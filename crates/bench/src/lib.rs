//! # chatiyp-bench
//!
//! The experiment harness: runs the full ChatIYP pipeline over the
//! CypherEval benchmark and scores every answer under all four metrics,
//! producing the records behind each figure and table of the paper (see
//! the binaries in `src/bin/`).

#![warn(missing_docs)]

use chatiyp_core::{ChatIyp, ChatIypConfig, Route};
use cypher_eval::{
    build_dataset, results_match, CypherEvalDataset, EvalConfig, EvalItem, Validation, Validator,
};
use iyp_data::{generate, IypConfig, IypDataset};
use iyp_llm::{Difficulty, Domain, TranslationError};
use iyp_metrics::{geval, GEval, MetricKind};
use serde::Serialize;

/// Everything recorded about one benchmark question.
#[derive(Debug, Clone, Serialize)]
pub struct ItemRecord {
    /// Question id.
    pub id: usize,
    /// Difficulty label.
    pub difficulty: Difficulty,
    /// Domain label.
    pub domain: Domain,
    /// Intent kind (stable template id).
    pub kind: String,
    /// The question.
    pub question: String,
    /// Gold Cypher.
    pub gold_cypher: String,
    /// Generated Cypher (if any).
    pub generated_cypher: Option<String>,
    /// Which route answered.
    pub route: Route,
    /// Error the simulated model injected, if any.
    pub injected_error: Option<TranslationError>,
    /// Ground truth: did the generated query reproduce the gold result?
    pub correct: bool,
    /// Reference answer from the validation model.
    pub reference: String,
    /// The system's answer.
    pub answer: String,
    /// BLEU score.
    pub bleu: f64,
    /// ROUGE score.
    pub rouge: f64,
    /// BERTScore.
    pub bertscore: f64,
    /// G-Eval score.
    pub geval: f64,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
}

impl ItemRecord {
    /// The score under a metric.
    pub fn score(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::Bleu => self.bleu,
            MetricKind::Rouge => self.rouge,
            MetricKind::BertScore => self.bertscore,
            MetricKind::GEval => self.geval,
        }
    }
}

/// Experiment configuration: dataset scale, benchmark size and pipeline
/// knobs. The defaults regenerate the paper's setting.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset generation parameters.
    pub data: IypConfig,
    /// Benchmark construction parameters.
    pub eval: EvalConfig,
    /// Pipeline configuration (stage toggles + LM knobs).
    pub pipeline: ChatIypConfig,
    /// Seed of the independent validation model and judge.
    pub judge_seed: u64,
    /// Worker threads answering benchmark questions. The pipeline is
    /// shared read-only, so any thread count produces the same records
    /// in the same order; 1 runs fully sequential.
    pub threads: usize,
}

/// The default evaluation thread count: one per available core.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            data: IypConfig::default(),
            eval: EvalConfig::default(),
            pipeline: ChatIypConfig::default(),
            judge_seed: 4242,
            threads: default_threads(),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for tests and smoke runs.
    pub fn small() -> Self {
        ExperimentConfig {
            data: IypConfig::tiny(),
            eval: EvalConfig {
                seed: 42,
                target_size: 81,
            },
            pipeline: ChatIypConfig::default(),
            judge_seed: 4242,
            threads: default_threads(),
        }
    }
}

/// The full evaluation output.
#[derive(Debug, Clone, Serialize)]
pub struct EvaluationRun {
    /// Per-question records.
    pub records: Vec<ItemRecord>,
}

/// Runs the complete evaluation: generate data, build benchmark, answer
/// every question, validate, and score under all four metrics.
pub fn run_evaluation(config: &ExperimentConfig) -> EvaluationRun {
    let dataset = generate(&config.data);
    let bench = build_dataset(&dataset, &config.eval);
    run_evaluation_on(config, dataset, &bench)
}

/// Runs the evaluation against an already-generated dataset/benchmark
/// (used by the ablation sweep to share the expensive generation).
///
/// Questions fan out over `config.threads` scoped worker threads, all
/// sharing the one read-only pipeline. Each thread answers a contiguous
/// chunk of the benchmark and records land in benchmark order, so the
/// output is identical to a sequential run regardless of thread count.
pub fn run_evaluation_on(
    config: &ExperimentConfig,
    dataset: IypDataset,
    bench: &CypherEvalDataset,
) -> EvaluationRun {
    let validator = Validator::new(config.judge_seed);
    let judge = GEval::new(config.judge_seed);
    // Validate against the graph before it moves into the pipeline.
    let validations: Vec<_> = bench
        .items
        .iter()
        .map(|item| {
            validator
                .validate(&dataset.graph, item)
                .expect("gold queries are well-formed by construction")
        })
        .collect();
    let chat = ChatIyp::new(dataset, config.pipeline.clone());

    let work: Vec<(&EvalItem, Validation)> = bench.items.iter().zip(validations).collect();
    let threads = config.threads.max(1).min(work.len().max(1));
    let records: Vec<ItemRecord> = if threads <= 1 {
        work.into_iter()
            .map(|(item, v)| score_item(&chat, &judge, item, v))
            .collect()
    } else {
        // Contiguous chunks, joined in spawn order: chunk k holds items
        // [k*len/n, (k+1)*len/n), so concatenation restores benchmark
        // order exactly.
        let chunk_size = work.len().div_ceil(threads);
        let mut work = work;
        let mut chunks: Vec<Vec<(&EvalItem, Validation)>> = Vec::with_capacity(threads);
        while !work.is_empty() {
            let rest = work.split_off(chunk_size.min(work.len()));
            chunks.push(std::mem::replace(&mut work, rest));
        }
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let chat = &chat;
                    let judge = &judge;
                    s.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(item, v)| score_item(chat, judge, item, v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("evaluation worker panicked"))
                .collect()
        })
    };
    EvaluationRun { records }
}

/// Answers one benchmark question and scores it under all four metrics.
/// Pure in `(chat, judge, item, validation)` up to wall-clock latency, so
/// records are identical whichever thread computes them.
fn score_item(
    chat: &ChatIyp,
    judge: &GEval,
    item: &EvalItem,
    validation: Validation,
) -> ItemRecord {
    let response = chat.ask(&item.question);
    let correct = response
        .query_result
        .as_ref()
        .map(|got| results_match(&validation.gold_result, got))
        .unwrap_or(false);
    let reference = validation.reference_answer;
    let answer = response.answer.clone();
    let mut rec = ItemRecord {
        id: item.id,
        difficulty: item.difficulty,
        domain: item.domain,
        kind: item.intent.kind().to_string(),
        question: item.question.clone(),
        gold_cypher: item.gold_cypher.clone(),
        generated_cypher: response.cypher.clone(),
        route: response.route,
        injected_error: response.injected_error,
        correct,
        bleu: 0.0,
        rouge: 0.0,
        bertscore: 0.0,
        geval: 0.0,
        latency_us: response.timings.total.as_micros() as u64,
        reference,
        answer,
    };
    rec.bleu = geval::score(
        MetricKind::Bleu,
        judge,
        &item.question,
        &rec.answer,
        &rec.reference,
    );
    rec.rouge = geval::score(
        MetricKind::Rouge,
        judge,
        &item.question,
        &rec.answer,
        &rec.reference,
    );
    rec.bertscore = geval::score(
        MetricKind::BertScore,
        judge,
        &item.question,
        &rec.answer,
        &rec.reference,
    );
    rec.geval = geval::score(
        MetricKind::GEval,
        judge,
        &item.question,
        &rec.answer,
        &rec.reference,
    );
    rec
}

impl EvaluationRun {
    /// Scores of one metric across all records.
    pub fn scores(&self, kind: MetricKind) -> Vec<f64> {
        self.records.iter().map(|r| r.score(kind)).collect()
    }

    /// Records of one (difficulty, optional domain) group.
    pub fn group(&self, difficulty: Difficulty, domain: Option<Domain>) -> Vec<&ItemRecord> {
        self.records
            .iter()
            .filter(|r| r.difficulty == difficulty && domain.map(|d| r.domain == d).unwrap_or(true))
            .collect()
    }

    /// Overall accuracy (gold-result reproduction rate).
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }

    /// Correctness labels aligned with [`EvaluationRun::scores`].
    pub fn correctness(&self) -> Vec<bool> {
        self.records.iter().map(|r| r.correct).collect()
    }
}

/// Renders one fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:w$}", w = *w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_records() {
        let run = run_evaluation(&ExperimentConfig::small());
        assert!(run.records.len() >= 80);
        for r in &run.records {
            for kind in MetricKind::ALL {
                let s = r.score(kind);
                assert!((0.0..=1.0).contains(&s), "{} {s}", kind.name());
            }
        }
        let acc = run.accuracy();
        assert!(acc > 0.3, "accuracy suspiciously low: {acc}");
        assert!(acc < 0.99, "accuracy suspiciously perfect: {acc}");
    }

    #[test]
    fn difficulty_gradient_holds() {
        let run = run_evaluation(&ExperimentConfig::small());
        let acc = |d| {
            let g = run.group(d, None);
            g.iter().filter(|r| r.correct).count() as f64 / g.len().max(1) as f64
        };
        let easy = acc(Difficulty::Easy);
        let hard = acc(Difficulty::Hard);
        assert!(
            easy > hard,
            "no difficulty gradient: easy={easy:.2} hard={hard:.2}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_evaluation(&ExperimentConfig::small());
        let b = run_evaluation(&ExperimentConfig::small());
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.geval, y.geval);
            assert_eq!(x.correct, y.correct);
        }
    }

    /// A record with the wall-clock latency zeroed: every other field is
    /// a pure function of the config, so serialized forms must match
    /// byte-for-byte across thread counts.
    fn stable_json(r: &ItemRecord) -> String {
        let mut r = r.clone();
        r.latency_us = 0;
        serde_json::to_string(&r).expect("record serializes")
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let sequential = run_evaluation(&ExperimentConfig {
            threads: 1,
            ..ExperimentConfig::small()
        });
        let parallel = run_evaluation(&ExperimentConfig {
            threads: 4,
            ..ExperimentConfig::small()
        });
        assert_eq!(sequential.records.len(), parallel.records.len());
        for (x, y) in sequential.records.iter().zip(&parallel.records) {
            assert_eq!(stable_json(x), stable_json(y));
        }
    }
}
