//! Measures what live ingest costs readers: query latency percentiles on
//! an idle store vs a store under a stream of snapshot publishes, and
//! the swap's own cost split into its two stages (`apply` = off-lock
//! clone + batch application, `swap` = the pointer swap readers can
//! actually contend with) across growing batch sizes.
//!
//! Each arm starts from a fresh [`GraphStore`] over the same base graph,
//! so the numbers stay comparable as batch size grows. The hard gate is
//! deliberately generous: the published-pointer swap must stay under
//! 10ms at the median — it is a clone-free pointer exchange, so failing
//! that means the design regressed to copying under the lock.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin ingest_swap [-- ROUNDS]
//! ```
//!
//! Results are written to `BENCH_swap.json` at the repository root.

use iyp_cypher::query;
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::{Graph, GraphStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The read mix: point lookup, expand + aggregate, ordered top-k.
const READ_QUERIES: [&str; 3] = [
    "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.name",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) \
     ORDER BY count(a) DESC LIMIT 5",
    "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) RETURN min(r.rank)",
];

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// One timed read through a freshly acquired snapshot; seconds.
fn timed_read(store: &GraphStore, q: &str) -> f64 {
    let t0 = Instant::now();
    let snap = store.load();
    query(snap.graph(), q).expect("read query executes");
    t0.elapsed().as_secs_f64()
}

/// Reads in a loop until `stop`, returning per-read latencies.
fn read_loop(store: &GraphStore, stop: &AtomicBool) -> Vec<f64> {
    let mut samples = Vec::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Acquire) {
        samples.push(timed_read(store, READ_QUERIES[i % READ_QUERIES.len()]));
        i += 1;
    }
    samples
}

struct Arm {
    batch_size: usize,
    read_p50_us: f64,
    read_p99_us: f64,
    apply_ms_median: f64,
    swap_us_median: f64,
    swap_us_max: f64,
    final_version: u64,
}

/// Runs `rounds` publishes of `batch_size` new ASes against a fresh
/// store while one reader hammers it; returns both sides' numbers.
fn contended_arm(base: &Graph, batch_size: usize, rounds: usize) -> Arm {
    let store = Arc::new(GraphStore::new(base.clone()));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || read_loop(&store, &stop))
    };

    let mut applies = Vec::with_capacity(rounds);
    let mut swaps = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let snap = store.load();
        let batch = growth_batch(snap.graph(), 4000 + i as u64, batch_size);
        let report = store.ingest(&batch).expect("batch applies");
        applies.push(report.apply.as_secs_f64());
        swaps.push(report.swap.as_secs_f64());
    }
    stop.store(true, Ordering::Release);
    let mut reads = reader.join().expect("reader finished");

    Arm {
        batch_size,
        read_p50_us: percentile(&mut reads, 0.50) * 1e6,
        read_p99_us: percentile(&mut reads, 0.99) * 1e6,
        apply_ms_median: percentile(&mut applies, 0.50) * 1e3,
        swap_us_median: percentile(&mut swaps, 0.50) * 1e6,
        swap_us_max: percentile(&mut swaps, 1.0) * 1e6,
        final_version: store.version(),
    }
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    let base = generate(&IypConfig::default()).graph;

    // Idle baseline: same reader loop, nothing publishing.
    let idle_store = GraphStore::new(base.clone());
    let mut idle = Vec::with_capacity(rounds * 30);
    for i in 0..rounds * 30 {
        idle.push(timed_read(
            &idle_store,
            READ_QUERIES[i % READ_QUERIES.len()],
        ));
    }
    let idle_p50 = percentile(&mut idle, 0.50) * 1e6;
    let idle_p99 = percentile(&mut idle, 0.99) * 1e6;

    let arms: Vec<Arm> = [1usize, 10, 100]
        .iter()
        .map(|&size| contended_arm(&base, size, rounds))
        .collect();

    println!("rounds per arm:     {rounds}");
    println!("idle reads:         p50 {idle_p50:.1}us  p99 {idle_p99:.1}us");
    for a in &arms {
        println!(
            "batch {:>3} new ASes: reads p50 {:.1}us p99 {:.1}us | \
             apply median {:.3}ms | swap median {:.1}us max {:.1}us | v{}",
            a.batch_size,
            a.read_p50_us,
            a.read_p99_us,
            a.apply_ms_median,
            a.swap_us_median,
            a.swap_us_max,
            a.final_version
        );
    }

    let report = serde_json::json!({
        "bench": "ingest_swap",
        "rounds": rounds as u64,
        "idle_read_p50_us": idle_p50,
        "idle_read_p99_us": idle_p99,
        "arms": arms.iter().map(|a| serde_json::json!({
            "batch_size": a.batch_size as u64,
            "read_p50_us": a.read_p50_us,
            "read_p99_us": a.read_p99_us,
            "apply_ms_median": a.apply_ms_median,
            "swap_us_median": a.swap_us_median,
            "swap_us_max": a.swap_us_max,
            "final_version": a.final_version,
        })).collect::<Vec<_>>(),
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_swap.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_swap.json writes");
    println!("wrote {out}");

    for a in &arms {
        assert_eq!(a.final_version, rounds as u64 + 1, "a publish went missing");
        assert!(
            a.swap_us_median < 10_000.0,
            "median swap {}us at batch {} — the swap should be a pointer \
             exchange, not a copy under the lock",
            a.swap_us_median,
            a.batch_size
        );
    }
}
