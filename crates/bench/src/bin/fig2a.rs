//! Figure 2a — comparison of metric distributions.
//!
//! Runs the full CypherEval benchmark through ChatIYP, scores every answer
//! under BLEU / ROUGE / BERTScore / G-Eval, and prints each metric's
//! distribution (histogram + summary). The paper's qualitative claims to
//! check against the output:
//!
//! * BLEU is depressed even on semantically-correct answers (paraphrase
//!   penalty) — low mean, mass near the bottom;
//! * ROUGE sits in between;
//! * BERTScore is compressed near the top (ceiling effect) — high mean,
//!   small spread, weak separation;
//! * G-Eval is bimodal — mass at both ends, high bimodality coefficient.

use chatiyp_bench::{run_evaluation, ExperimentConfig};
use iyp_metrics::stats::{summarize, Histogram};
use iyp_metrics::MetricKind;

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "running {} questions against the {}-AS synthetic IYP (seed {}) ...",
        config.eval.target_size, config.data.n_as, config.data.seed
    );
    let run = run_evaluation(&config);

    println!(
        "Figure 2a — metric score distributions (n = {})",
        run.records.len()
    );
    println!("==============================================================");
    for kind in MetricKind::ALL {
        let scores = run.scores(kind);
        let s = summarize(&scores);
        let h = Histogram::build(&scores, 10);
        println!();
        println!(
            "{:<10} mean {:.3}  std {:.3}  median {:.3}  IQR [{:.3}, {:.3}]  bimodality {:.3}",
            kind.name(),
            s.mean,
            s.std,
            s.median,
            s.q25,
            s.q75,
            s.bimodality
        );
        print!("{}", h.render(40));
    }

    println!();
    println!("Shape checks vs the paper:");
    let bleu = summarize(&run.scores(MetricKind::Bleu));
    let rouge = summarize(&run.scores(MetricKind::Rouge));
    let bert = summarize(&run.scores(MetricKind::BertScore));
    let geval = summarize(&run.scores(MetricKind::GEval));
    println!(
        "  BLEU over-penalizes paraphrase:    mean(BLEU) = {:.3} < mean(ROUGE) = {:.3}  [{}]",
        bleu.mean,
        rouge.mean,
        ok(bleu.mean < rouge.mean)
    );
    println!(
        "  BERTScore ceiling effect:          q25(BERT) = {:.3} > q25(ROUGE) = {:.3} > q25(BLEU) = {:.3}; \
         std(BERT) = {:.3} < std(G-Eval) = {:.3}  [{}]",
        bert.q25,
        rouge.q25,
        bleu.q25,
        bert.std,
        geval.std,
        ok(bert.q25 > rouge.q25 && rouge.q25 > bleu.q25 && bert.std < geval.std)
    );
    println!(
        "  G-Eval bimodality:                 coefficient = {:.3} (> 0.555: {})",
        geval.bimodality,
        ok(geval.bimodality > 0.555)
    );
    let geval_hist = Histogram::build(&run.scores(MetricKind::GEval), 10);
    println!(
        "  G-Eval mass at the extremes:       edge mass = {:.2} [{}]",
        geval_hist.edge_mass(),
        ok(geval_hist.edge_mass() > 0.6)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
