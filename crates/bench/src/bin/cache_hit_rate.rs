//! Measures the two-tier query cache on the 58-query parity corpus: a
//! cold pass (every query a miss) vs repeated warm passes (every query a
//! hit), plus an uncached baseline and the observed counters.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin cache_hit_rate [-- WARM_PASSES]
//! ```

use chatiyp_core::cache::{CacheConfig, QueryCache};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::Params;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::{Graph, GraphSnapshot};
use std::time::Instant;

/// One full pass over the corpus through the cache; returns seconds.
fn cached_pass(cache: &QueryCache, snap: &GraphSnapshot) -> f64 {
    let params = Params::new();
    let t0 = Instant::now();
    for q in PARITY_QUERIES {
        cache
            .get_or_execute(snap, q, &params)
            .expect("corpus query executes");
    }
    t0.elapsed().as_secs_f64()
}

/// One full pass executed directly, no cache anywhere.
fn uncached_pass(graph: &Graph) -> f64 {
    let t0 = Instant::now();
    for q in PARITY_QUERIES {
        iyp_cypher::query(graph, q).expect("corpus query executes");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let warm_passes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    let snap = GraphSnapshot::new(generate(&IypConfig::default()).graph, 1);
    let cache = QueryCache::new(CacheConfig::default());

    // Uncached baseline, averaged over the same number of passes.
    let mut t_uncached = 0.0;
    for _ in 0..warm_passes {
        t_uncached += uncached_pass(snap.graph());
    }
    t_uncached /= warm_passes as f64;

    let t_cold = cached_pass(&cache, &snap);
    let mut t_warm = 0.0;
    for _ in 0..warm_passes {
        t_warm += cached_pass(&cache, &snap);
    }
    t_warm /= warm_passes as f64;

    let stats = cache.stats();
    let total = stats.hits + stats.misses;
    println!("corpus queries:      {}", PARITY_QUERIES.len());
    println!("uncached pass (avg): {:.3}ms", t_uncached * 1e3);
    println!("cold pass (misses):  {:.3}ms", t_cold * 1e3);
    println!("warm pass (avg):     {:.3}ms", t_warm * 1e3);
    println!(
        "hit speedup:         {:.1}x vs uncached",
        t_uncached / t_warm
    );
    println!(
        "hit rate:            {:.1}% ({} hits / {} lookups)",
        100.0 * stats.hits as f64 / total as f64,
        stats.hits,
        total
    );
    println!(
        "plan cache:          {} hits / {} misses, {} entries",
        stats.plan.hits, stats.plan.misses, stats.plan.len
    );
    println!(
        "evictions: {}  invalidations: {}  expirations: {}",
        stats.evictions, stats.invalidations, stats.expirations
    );

    assert_eq!(stats.misses as usize, PARITY_QUERIES.len());
    assert_eq!(
        stats.hits as usize,
        PARITY_QUERIES.len() * warm_passes,
        "warm passes must all hit"
    );
    assert!(
        t_warm < t_uncached,
        "cache hits were not faster than uncached execution"
    );
}
