//! Measures what keeps the retrieval index fresh after an ingest:
//! incrementally patching the live [`RetrievalIndex`] from the applied
//! batch's `AppliedDelta` (`derive` + clone + `apply_delta`) versus
//! rebuilding the whole index from the new graph (`describe_all` over
//! every node, re-embedding every document, re-deriving the entity
//! catalog).
//!
//! Each round starts from the same base graph and the same warm index,
//! so the two arms patch/rebuild toward identical targets — the bench
//! asserts the incremental result *equals* the rebuild (document count
//! and entity catalog) before trusting the timings. The hard gate: for
//! every batch size up to 100 ops the median incremental refresh must be
//! at least 5x faster than the median full rebuild, because the whole
//! point of delta-driven refresh is to pay for what changed, not for
//! the graph's size.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin index_refresh [-- ROUNDS]
//! ```
//!
//! Results are written to `BENCH_index.json` at the repository root.

use chatiyp_core::RetrievalIndex;
use iyp_data::{describe_delta, generate, growth_batch, IypConfig};
use iyp_graphdb::Graph;
use iyp_llm::EntityCatalog;
use std::time::Instant;

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

struct Arm {
    batch_size: usize,
    incremental_ms_median: f64,
    incremental_ms_p99: f64,
    rebuild_ms_median: f64,
    speedup_median: f64,
    docs_patched_median: f64,
}

/// Runs `rounds` independent refreshes of `batch_size` new ASes, timing
/// the incremental patch against a from-scratch rebuild of the same
/// target index.
fn refresh_arm(base: &Graph, warm: &RetrievalIndex, batch_size: usize, rounds: usize) -> Arm {
    let mut incremental = Vec::with_capacity(rounds);
    let mut rebuild = Vec::with_capacity(rounds);
    let mut patched = Vec::with_capacity(rounds);

    for round in 0..rounds {
        let batch = growth_batch(base, 7000 + round as u64, batch_size);
        let mut next_graph = base.clone();
        let applied = batch.apply_tracked(&mut next_graph).expect("batch applies");

        // Incremental: derive the doc/catalog delta from the applied
        // batch, clone the warm index off-lock, patch it — exactly what
        // `ChatIyp::ingest` does between the graph apply and the swap.
        let t0 = Instant::now();
        let delta = describe_delta(&next_graph, &applied);
        let mut inc = warm.clone();
        inc.apply_delta(base, &next_graph, &delta);
        incremental.push(t0.elapsed().as_secs_f64());
        patched.push(delta.upserts.len() as f64);

        // Full rebuild: re-describe and re-embed every node, re-derive
        // the entity catalog — the pre-delta refresh strategy.
        let t0 = Instant::now();
        let full = RetrievalIndex::from_graph_at(&next_graph, 2, 2)
            .with_catalog(EntityCatalog::from_graph(&next_graph));
        rebuild.push(t0.elapsed().as_secs_f64());

        // The timings only count if the shortcut lands on the same
        // index the rebuild produces.
        assert_eq!(
            inc.docs().len(),
            full.docs().len(),
            "incremental patch and rebuild disagree on document count"
        );
        assert_eq!(
            inc.catalog(),
            full.catalog(),
            "incremental patch and rebuild disagree on the entity catalog"
        );
    }

    let inc_median = percentile(&mut incremental, 0.50) * 1e3;
    let reb_median = percentile(&mut rebuild, 0.50) * 1e3;
    Arm {
        batch_size,
        incremental_ms_median: inc_median,
        incremental_ms_p99: percentile(&mut incremental, 0.99) * 1e3,
        rebuild_ms_median: reb_median,
        speedup_median: reb_median / inc_median,
        docs_patched_median: percentile(&mut patched, 0.50),
    }
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    let base = generate(&IypConfig::default()).graph;
    let t0 = Instant::now();
    let warm =
        RetrievalIndex::from_graph_at(&base, 1, 1).with_catalog(EntityCatalog::from_graph(&base));
    let cold_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let arms: Vec<Arm> = [1usize, 10, 100]
        .iter()
        .map(|&size| refresh_arm(&base, &warm, size, rounds))
        .collect();

    println!("rounds per arm:   {rounds}");
    println!(
        "base graph:       {} nodes, {} docs, cold build {cold_build_ms:.1}ms",
        base.node_count(),
        warm.docs().len()
    );
    for a in &arms {
        println!(
            "batch {:>3} ops: incremental median {:.3}ms p99 {:.3}ms | \
             rebuild median {:.1}ms | speedup {:.1}x | ~{:.0} docs patched",
            a.batch_size,
            a.incremental_ms_median,
            a.incremental_ms_p99,
            a.rebuild_ms_median,
            a.speedup_median,
            a.docs_patched_median
        );
    }

    let report = serde_json::json!({
        "bench": "index_refresh",
        "rounds": rounds as u64,
        "base_nodes": base.node_count() as u64,
        "base_docs": warm.docs().len() as u64,
        "cold_build_ms": cold_build_ms,
        "arms": arms.iter().map(|a| serde_json::json!({
            "batch_size": a.batch_size as u64,
            "incremental_ms_median": a.incremental_ms_median,
            "incremental_ms_p99": a.incremental_ms_p99,
            "rebuild_ms_median": a.rebuild_ms_median,
            "speedup_median": a.speedup_median,
            "docs_patched_median": a.docs_patched_median,
        })).collect::<Vec<_>>(),
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_index.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_index.json writes");
    println!("wrote {out}");

    for a in &arms {
        assert!(
            a.speedup_median >= 5.0,
            "incremental refresh only {:.1}x faster than a rebuild at batch {} — \
             the delta path must scale with the batch, not the graph",
            a.speedup_median,
            a.batch_size
        );
    }
}
