//! Measures what the copy-on-write paged store buys over the PR-5 deep
//! clone: snapshot clone + batch apply cost across graph scales (1×, 4×,
//! 16× of the generated dataset) × batch sizes (1, 10, 100 new ASes),
//! side by side with an emulation of the old path
//! ([`Graph::deep_clone`] — every page privately copied — followed by
//! the same batch apply). Also samples read latency idle vs under a
//! paced stream of ingests at each scale.
//!
//! The gates encode the design's promises:
//!
//! * apply cost is **O(delta), not O(graph)** — at the 1× scale the
//!   paged clone+apply at batch=1 beats the deep-clone path ≥5×, and for
//!   a fixed batch size the paged cost stays within 2× across the
//!   1× → 16× scale sweep;
//! * ingest is **allocation-quiet for readers** — read p99 under ingest
//!   stays within 2× of idle p99.
//!
//! Between timed ingests the store is reset to the scaled base graph
//! (itself a cheap COW publish) so every sample runs against the same
//! graph size, and the writer paces itself (~2ms between publishes) to
//! model a delta stream rather than a CPU-saturating spin — on the
//! 1-core CI container an unpaced writer measures scheduler preemption,
//! not the store.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin cow_ingest [-- ROUNDS]
//! ```
//!
//! Results are written to `BENCH_cow.json` at the repository root.

use iyp_cypher::query;
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::{DeltaBatch, Graph, GraphStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The read mix: point lookup, expand + aggregate, ordered top-k.
const READ_QUERIES: [&str; 3] = [
    "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.name",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) \
     ORDER BY count(a) DESC LIMIT 5",
    "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) RETURN min(r.rank)",
];

const SCALES: [usize; 3] = [1, 4, 16];
const BATCH_SIZES: [usize; 3] = [1, 10, 100];

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// One timed read through a freshly acquired snapshot; seconds.
fn timed_read(store: &GraphStore, q: &str) -> f64 {
    let t0 = Instant::now();
    let snap = store.load();
    query(snap.graph(), q).expect("read query executes");
    t0.elapsed().as_secs_f64()
}

/// Grows `g` with synthetic delta batches until it holds at least
/// `target_nodes` nodes (the scale sweep's 4× / 16× graphs).
fn grow_to(mut g: Graph, target_nodes: usize, mut seed: u64) -> Graph {
    while g.node_count() < target_nodes {
        // Each new AS contributes an AS node and a Name node.
        let deficit = target_nodes - g.node_count();
        let n_as = (deficit / 2).clamp(1, 4000);
        let batch = growth_batch(&g, seed, n_as);
        batch.apply(&mut g).expect("growth batch applies");
        seed += 1;
    }
    g
}

/// Pre-generated ingest batches, all valid against `base` (the store is
/// reset to `base` after every publish, so ids never dangle).
fn pregen(base: &Graph, batch_size: usize, n: usize) -> Vec<DeltaBatch> {
    (0..n)
        .map(|i| growth_batch(base, 9000 + i as u64, batch_size))
        .collect()
}

/// Writes one byte per cache line of a 320 MiB buffer — sized past the
/// largest L3 we run on (~260 MB) — evicting the cache and TLB state
/// left by previous rounds. Called before every timed
/// apply in both arms so the two ends of the scale sweep measure the
/// same (cold) memory state: the 1× graph otherwise stays cache-resident
/// between rounds while the 16× graph does not, and the sweep would
/// compare cache warmth instead of the store's copy discipline.
fn evict_caches(junk: &mut [u8]) {
    for b in junk.iter_mut().step_by(64) {
        *b = b.wrapping_add(1);
    }
    std::hint::black_box(&junk[0]);
}

#[derive(Clone)]
struct Cell {
    batch_size: usize,
    clone_us_median: f64,
    apply_ms_median: f64,
    /// clone + apply — the full writer-side build cost per publish.
    total_ms_median: f64,
    swap_us_median: f64,
    /// Deep-clone emulation of the PR-5 path: fully-owned copy + apply.
    legacy_ms_median: f64,
    speedup_vs_deep_clone: f64,
}

/// Times `rounds` paged ingests and `rounds` deep-clone emulations of
/// the same batches against a store holding `base`. No reader thread:
/// on a 1-core container a concurrent reader would time preemption, and
/// read-side interference is measured separately in `read_arm`.
fn timing_cell(base: &Graph, batch_size: usize, rounds: usize) -> Cell {
    let store = GraphStore::new(base.clone());
    let batches = pregen(base, batch_size, rounds.min(64));

    let mut junk = vec![0u8; 320 << 20];
    let (mut clones, mut applies, mut totals, mut swaps) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..rounds {
        evict_caches(&mut junk);
        let report = store.ingest(&batches[i % batches.len()]).expect("applies");
        clones.push(report.clone.as_secs_f64());
        applies.push(report.apply.as_secs_f64());
        totals.push(report.clone.as_secs_f64() + report.apply.as_secs_f64());
        swaps.push(report.swap.as_secs_f64());
        // Reset so every round applies against the same graph size.
        store.publish(base.clone());
    }

    let snap = store.load();
    let mut legacy = Vec::new();
    for i in 0..rounds {
        evict_caches(&mut junk);
        let t0 = Instant::now();
        let mut g = snap.graph().deep_clone();
        batches[i % batches.len()].apply(&mut g).expect("applies");
        legacy.push(t0.elapsed().as_secs_f64());
    }

    let total_ms_median = percentile(&mut totals, 0.50) * 1e3;
    let legacy_ms_median = percentile(&mut legacy, 0.50) * 1e3;
    Cell {
        batch_size,
        clone_us_median: percentile(&mut clones, 0.50) * 1e6,
        apply_ms_median: percentile(&mut applies, 0.50) * 1e3,
        total_ms_median,
        swap_us_median: percentile(&mut swaps, 0.50) * 1e6,
        legacy_ms_median,
        speedup_vs_deep_clone: legacy_ms_median / total_ms_median.max(1e-9),
    }
}

struct ReadArm {
    idle_p50_us: f64,
    idle_p99_us: f64,
    ingest_p50_us: f64,
    ingest_p99_us: f64,
    publishes: u64,
}

/// Idle reads, then reads against a paced stream of batch=10 ingests.
fn read_arm(base: &Graph, idle_samples: usize, window: Duration) -> ReadArm {
    let store = Arc::new(GraphStore::new(base.clone()));
    let mut idle = Vec::with_capacity(idle_samples);
    for i in 0..idle_samples {
        idle.push(timed_read(&store, READ_QUERIES[i % READ_QUERIES.len()]));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                samples.push(timed_read(&store, READ_QUERIES[i % READ_QUERIES.len()]));
                i += 1;
            }
            samples
        })
    };

    let batches = pregen(base, 10, 32);
    let t0 = Instant::now();
    let mut publishes = 0u64;
    while t0.elapsed() < window {
        store
            .ingest(&batches[publishes as usize % batches.len()])
            .expect("applies");
        store.publish(base.clone());
        publishes += 2;
        // Pace the stream: deltas arrive at a rate, they don't spin.
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Release);
    let mut contended = reader.join().expect("reader finished");

    ReadArm {
        idle_p50_us: percentile(&mut idle, 0.50) * 1e6,
        idle_p99_us: percentile(&mut idle, 0.99) * 1e6,
        ingest_p50_us: percentile(&mut contended, 0.50) * 1e6,
        ingest_p99_us: percentile(&mut contended, 0.99) * 1e6,
        publishes,
    }
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);

    let base = generate(&IypConfig::default()).graph;
    let base_nodes = base.node_count();

    let mut scale_reports = Vec::new();
    let mut cells: Vec<(usize, Cell)> = Vec::new();
    for &scale in &SCALES {
        let g = if scale == 1 {
            base.clone()
        } else {
            grow_to(base.clone(), base_nodes * scale, 7000 + scale as u64)
        };
        println!(
            "scale {scale}x: {} nodes, {} rels",
            g.node_count(),
            g.rel_count()
        );

        let reads = read_arm(&g, (rounds * 30).max(200), Duration::from_millis(400));
        println!(
            "  reads idle p50 {:.1}us p99 {:.1}us | under ingest p50 {:.1}us p99 {:.1}us ({} publishes)",
            reads.idle_p50_us,
            reads.idle_p99_us,
            reads.ingest_p50_us,
            reads.ingest_p99_us,
            reads.publishes
        );

        let mut arm_jsons = Vec::new();
        for &bs in &BATCH_SIZES {
            let cell = timing_cell(&g, bs, rounds);
            println!(
                "  batch {:>3}: clone {:.1}us | apply {:.3}ms | total {:.3}ms | \
                 deep-clone path {:.3}ms | speedup {:.1}x | swap {:.1}us",
                cell.batch_size,
                cell.clone_us_median,
                cell.apply_ms_median,
                cell.total_ms_median,
                cell.legacy_ms_median,
                cell.speedup_vs_deep_clone,
                cell.swap_us_median
            );
            arm_jsons.push(serde_json::json!({
                "batch_size": cell.batch_size as u64,
                "clone_us_median": cell.clone_us_median,
                "apply_ms_median": cell.apply_ms_median,
                "total_ms_median": cell.total_ms_median,
                "swap_us_median": cell.swap_us_median,
                "legacy_apply_ms_median": cell.legacy_ms_median,
                "speedup_vs_deep_clone": cell.speedup_vs_deep_clone,
            }));
            cells.push((scale, cell));
        }

        scale_reports.push(serde_json::json!({
            "scale": scale as u64,
            "nodes": g.node_count() as u64,
            "rels": g.rel_count() as u64,
            "idle_read_p50_us": reads.idle_p50_us,
            "idle_read_p99_us": reads.idle_p99_us,
            "ingest_read_p50_us": reads.ingest_p50_us,
            "ingest_read_p99_us": reads.ingest_p99_us,
            "ingest_publishes": reads.publishes,
            "read_p99_ratio": reads.ingest_p99_us / reads.idle_p99_us.max(1e-9),
            "arms": arm_jsons,
        }));
    }

    let report = serde_json::json!({
        "bench": "cow_ingest",
        "rounds": rounds as u64,
        "base_nodes": base_nodes as u64,
        "scales": scale_reports,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cow.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_cow.json writes");
    println!("wrote {out}");

    // Gate 1: O(delta) beats O(graph) — at the 1× scale, batch=1, the
    // paged clone+apply must be ≥5× faster than the deep-clone path.
    let (_, small) = cells
        .iter()
        .find(|(s, c)| *s == 1 && c.batch_size == 1)
        .expect("1x/batch=1 cell");
    assert!(
        small.speedup_vs_deep_clone >= 5.0,
        "paged ingest at 1x/batch=1 is only {:.1}x faster than the deep-clone \
         path (total {:.3}ms vs {:.3}ms) — the COW clone is not O(delta)",
        small.speedup_vs_deep_clone,
        small.total_ms_median,
        small.legacy_ms_median
    );

    // Gate 2: apply cost tracks batch size, not graph size — for a fixed
    // batch, apply on the 16× graph may cost at most 2× the 1× graph.
    // (The COW clone is gated separately by gate 1; its cost is O(pages),
    // microseconds, and reported per cell as clone_us_median.)
    for &bs in &BATCH_SIZES {
        let at = |scale: usize| {
            cells
                .iter()
                .find(|(s, c)| *s == scale && c.batch_size == bs)
                .map(|(_, c)| c.apply_ms_median)
                .expect("cell")
        };
        let (t1, t16) = (at(1), at(16));
        assert!(
            t16 <= t1 * 2.0,
            "batch {bs}: apply grew {:.2}x across 1x→16x scale \
             ({t1:.3}ms → {t16:.3}ms) — apply cost is tracking graph size",
            t16 / t1.max(1e-9)
        );
    }

    // Gate 3: readers barely notice ingest — p99 under the paced stream
    // within 2× of idle p99 at every scale.
    for sr in &scale_reports {
        let ratio = sr["read_p99_ratio"].as_f64().expect("ratio");
        assert!(
            ratio <= 2.0,
            "scale {}: read p99 under ingest is {ratio:.2}x idle \
             ({:.1}us vs {:.1}us)",
            sr["scale"],
            sr["ingest_read_p99_us"].as_f64().unwrap_or(0.0),
            sr["idle_read_p99_us"].as_f64().unwrap_or(0.0)
        );
    }
    println!("all gates passed");
}
