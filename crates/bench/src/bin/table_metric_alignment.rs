//! Finding 1 — metric alignment with ground-truth correctness.
//!
//! The paper adopts G-Eval because it "aligns closely with human
//! judgment". Our human-judgment proxy is the validation model's binary
//! correctness label (gold-result reproduction). For each metric this
//! table reports correlation with that label and the separation between
//! correct and incorrect answers; G-Eval should dominate.

use chatiyp_bench::{row, run_evaluation, ExperimentConfig};
use iyp_metrics::correlation::{kendall_tau, pearson_ci, point_biserial, spearman};
use iyp_metrics::stats::summarize;
use iyp_metrics::MetricKind;

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "running {} questions against the {}-AS synthetic IYP (seed {}) ...",
        config.eval.target_size, config.data.n_as, config.data.seed
    );
    let run = run_evaluation(&config);
    let labels = run.correctness();
    let label_f: Vec<f64> = labels.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();

    println!(
        "Finding 1 — alignment of metrics with correctness (n = {}, accuracy = {:.1}%)",
        run.records.len(),
        100.0 * run.accuracy()
    );
    println!("================================================================================");
    let widths = [10, 12, 10, 10, 12, 14, 18];
    println!(
        "{}",
        row(
            &[
                "metric".into(),
                "point-bis.".into(),
                "spearman".into(),
                "kendall".into(),
                "separation".into(),
                "mean|correct".into(),
                "mean|incorrect".into(),
            ],
            &widths
        )
    );
    let mut best: Option<(f64, &str)> = None;
    for kind in MetricKind::ALL {
        let scores = run.scores(kind);
        let pb = point_biserial(&scores, &labels);
        let sp = spearman(&scores, &label_f);
        let kt = kendall_tau(&scores, &label_f);
        let correct: Vec<f64> = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(s, _)| *s)
            .collect();
        let incorrect: Vec<f64> = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(s, _)| *s)
            .collect();
        let mc = summarize(&correct).mean;
        let mi = summarize(&incorrect).mean;
        println!(
            "{}",
            row(
                &[
                    kind.name().into(),
                    format!("{pb:.3}"),
                    format!("{sp:.3}"),
                    format!("{kt:.3}"),
                    format!("{:.3}", mc - mi),
                    format!("{mc:.3}"),
                    format!("{mi:.3}"),
                ],
                &widths
            )
        );
        if best.map(|(b, _)| pb > b).unwrap_or(true) {
            best = Some((pb, kind.name()));
        }
    }
    let (best_r, best_name) = best.expect("four metrics scored");
    let geval_scores = run.scores(MetricKind::GEval);
    let (lo, hi) = pearson_ci(&geval_scores, &label_f, 200);

    println!();
    println!("G-Eval point-biserial 95% bootstrap CI: [{lo:.3}, {hi:.3}]");
    println!(
        "Best-aligned metric: {best_name} (r = {best_r:.3}) [{}]",
        if best_name == "G-Eval" {
            "OK — matches the paper"
        } else {
            "MISMATCH"
        }
    );
}
