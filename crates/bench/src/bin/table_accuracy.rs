//! Finding 2 — accuracy by difficulty and domain.
//!
//! The paper's second finding: structural complexity, not domain
//! specificity, poses the greatest challenge. This table reports
//! gold-result reproduction accuracy per (difficulty, domain) cell, the
//! route distribution, and the frequency of each injected translation
//! error kind.

use chatiyp_bench::{row, run_evaluation, ExperimentConfig, ItemRecord};
use chatiyp_core::Route;
use iyp_llm::{Difficulty, Domain};
use std::collections::BTreeMap;

fn accuracy(records: &[&ItemRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().filter(|r| r.correct).count() as f64 / records.len() as f64
}

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "running {} questions against the {}-AS synthetic IYP (seed {}) ...",
        config.eval.target_size, config.data.n_as, config.data.seed
    );
    let run = run_evaluation(&config);

    println!(
        "Finding 2 — accuracy by difficulty and domain (n = {})",
        run.records.len()
    );
    println!("==============================================================");
    let widths = [8, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "".into(),
                "general".into(),
                "technical".into(),
                "all".into()
            ],
            &widths
        )
    );
    let mut col_means: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for difficulty in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
        let mut cells = vec![difficulty.to_string()];
        for domain in [Some(Domain::General), Some(Domain::Technical), None] {
            let group = run.group(difficulty, domain);
            let acc = accuracy(&group);
            cells.push(format!("{:.1}% ({})", 100.0 * acc, group.len()));
            let key = match domain {
                Some(Domain::General) => "general",
                Some(Domain::Technical) => "technical",
                None => "all",
            };
            col_means.entry(key).or_default().push(acc);
        }
        println!("{}", row(&cells, &widths));
    }
    println!();
    println!("Route distribution:");
    for route in [Route::Cypher, Route::VectorFallback, Route::Failed] {
        let n = run.records.iter().filter(|r| r.route == route).count();
        println!(
            "  {route:<16} {n:>4} ({:.1}%)",
            100.0 * n as f64 / run.records.len() as f64
        );
    }
    println!();
    println!("Injected translation errors (simulated-LM failure modes):");
    let mut by_err: BTreeMap<String, usize> = BTreeMap::new();
    for r in &run.records {
        if let Some(e) = r.injected_error {
            *by_err.entry(format!("{e:?}")).or_default() += 1;
        }
    }
    for (err, n) in &by_err {
        println!("  {err:<18} {n:>4}");
    }

    println!();
    println!("Shape checks vs the paper:");
    let acc_d = |d| accuracy(&run.group(d, None));
    let easy = acc_d(Difficulty::Easy);
    let medium = acc_d(Difficulty::Medium);
    let hard = acc_d(Difficulty::Hard);
    println!(
        "  monotone degradation:  Easy {:.1}% > Medium {:.1}% > Hard {:.1}% [{}]",
        100.0 * easy,
        100.0 * medium,
        100.0 * hard,
        ok(easy > medium && medium > hard)
    );
    // Domain effect must be smaller than the difficulty effect.
    let gen_acc: f64 = [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard]
        .iter()
        .map(|&d| accuracy(&run.group(d, Some(Domain::General))))
        .sum::<f64>()
        / 3.0;
    let tech_acc: f64 = [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard]
        .iter()
        .map(|&d| accuracy(&run.group(d, Some(Domain::Technical))))
        .sum::<f64>()
        / 3.0;
    let domain_gap = (gen_acc - tech_acc).abs();
    let difficulty_gap = easy - hard;
    println!(
        "  structure >> domain:   difficulty gap {:.1}pp vs domain gap {:.1}pp [{}]",
        100.0 * difficulty_gap,
        100.0 * domain_gap,
        ok(difficulty_gap > 2.0 * domain_gap)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
