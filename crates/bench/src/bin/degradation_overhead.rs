//! Measures what the resilience layer costs when nothing is failing.
//!
//! Two arms over the same question batch, median-of-interleaved-passes:
//! the layer disabled entirely vs enabled with no fault plan and no
//! deadline (the production default). The enabled arm pays for budget
//! bookkeeping and the per-stage fault checks — which must be nearly
//! free, because every healthy request pays them.
//!
//! The overhead target is <2%; the bench hard-fails only above a
//! generous 10% so a noisy container doesn't flake, while the printed
//! number is what docs/RESILIENCE.md cites. Results are written to
//! `BENCH_resilience.json` at the repository root.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin degradation_overhead [-- PASSES]
//! ```

use chatiyp_core::{ChatIyp, ChatIypConfig, ResilienceConfig};
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn pipeline(resilience: ResilienceConfig) -> ChatIyp {
    let config = ChatIypConfig {
        lm: LmConfig {
            seed: 42,
            skill: 1.0,
            variety: 0.0,
        },
        resilience,
        ..Default::default()
    };
    ChatIyp::new(generate(&IypConfig::tiny()), config)
}

/// One timed pass of the question batch through a pipeline; seconds.
fn ask_pass(chat: &ChatIyp, questions: &[String]) -> f64 {
    let t0 = Instant::now();
    for q in questions {
        chat.ask(q);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let passes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);

    let dataset = generate(&IypConfig::tiny());
    let questions: Vec<String> = dataset
        .ases
        .iter()
        .flat_map(|a| {
            [
                format!("What is the name of AS{}?", a.asn),
                format!("In which country is AS{} registered?", a.asn),
            ]
        })
        .collect();

    let disabled = pipeline(ResilienceConfig::disabled());
    let enabled = pipeline(ResilienceConfig::default());
    assert!(!disabled.config().resilience.enabled && enabled.config().resilience.enabled);
    assert!(
        enabled.config().resilience.faults.is_none(),
        "the enabled arm must be zero-fault"
    );

    // Warm both arms (caches, allocator) before measuring.
    ask_pass(&disabled, &questions);
    ask_pass(&enabled, &questions);

    // Interleave the arms so drift (thermal, scheduler) hits both.
    let mut t_disabled = Vec::with_capacity(passes);
    let mut t_enabled = Vec::with_capacity(passes);
    for _ in 0..passes {
        t_disabled.push(ask_pass(&disabled, &questions));
        t_enabled.push(ask_pass(&enabled, &questions));
    }
    let m_disabled = median(&mut t_disabled);
    let m_enabled = median(&mut t_enabled);
    let overhead = (m_enabled - m_disabled) / m_disabled * 100.0;

    println!("questions per pass:      {}", questions.len());
    println!("passes:                  {passes} (median)");
    println!("ask, resilience off:     {:.3}ms", m_disabled * 1e3);
    println!("ask, resilience on:      {:.3}ms", m_enabled * 1e3);
    println!("resilience overhead:     {overhead:+.2}% (target <2%)");

    // Sanity: the enabled zero-fault arm never degrades or retries.
    let counters = enabled.resilience_stats();
    assert_eq!(
        (counters.retries, counters.degraded),
        (0, 0),
        "zero-fault arm recorded resilience events: {counters:?}"
    );

    let report = serde_json::json!({
        "bench": "degradation_overhead",
        "questions_per_pass": questions.len() as u64,
        "passes": passes as u64,
        "disabled_ms": m_disabled * 1e3,
        "enabled_ms": m_enabled * 1e3,
        "overhead_pct": overhead,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_resilience.json writes");
    println!("wrote {out}");

    // Generous gate: the target is <2%, but CI containers are noisy.
    assert!(
        overhead < 10.0,
        "resilience overhead {overhead:.2}% exceeds the 10% hard ceiling"
    );
}
