//! Diagnostic: per-intent-kind accuracy and mean G-Eval — used to audit
//! which question templates drive each difficulty band.

use chatiyp_bench::{run_evaluation, ExperimentConfig};
use std::collections::BTreeMap;

fn main() {
    let run = run_evaluation(&ExperimentConfig::default());
    let mut by: BTreeMap<(String, String, String), Vec<&chatiyp_bench::ItemRecord>> =
        BTreeMap::new();
    for r in &run.records {
        by.entry((
            r.difficulty.to_string(),
            r.domain.to_string(),
            r.kind.clone(),
        ))
        .or_default()
        .push(r);
    }
    println!(
        "{:<8} {:<10} {:<32} {:>3} {:>6} {:>7} {:>7}",
        "diff", "domain", "kind", "n", "acc%", "geval", "empty%"
    );
    for ((diff, dom, kind), rs) in &by {
        let n = rs.len();
        let acc = 100.0 * rs.iter().filter(|r| r.correct).count() as f64 / n as f64;
        let geval: f64 = rs.iter().map(|r| r.geval).sum::<f64>() / n as f64;
        let empty = 100.0
            * rs.iter()
                .filter(|r| {
                    r.reference.contains("empty result")
                        || r.reference.contains("No data")
                        || r.reference.contains("no record")
                })
                .count() as f64
            / n as f64;
        println!("{diff:<8} {dom:<10} {kind:<32} {n:>3} {acc:>6.1} {geval:>7.3} {empty:>7.1}");
    }
}
