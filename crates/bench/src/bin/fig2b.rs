//! Figure 2b — G-Eval scores by difficulty (and domain).
//!
//! Paper claims to check against the output:
//! * over half of Easy responses score above 0.75;
//! * performance degrades from Easy → Medium → Hard;
//! * no consistent gap between general and technical domains — structural
//!   complexity, not domain specificity, is what hurts.

use chatiyp_bench::{run_evaluation, ExperimentConfig};
use iyp_llm::{Difficulty, Domain};
use iyp_metrics::stats::{summarize, Histogram};

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "running {} questions against the {}-AS synthetic IYP (seed {}) ...",
        config.eval.target_size, config.data.n_as, config.data.seed
    );
    let run = run_evaluation(&config);

    println!("Figure 2b — G-Eval by difficulty and domain");
    println!("==============================================================");
    for difficulty in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
        let scores: Vec<f64> = run
            .group(difficulty, None)
            .iter()
            .map(|r| r.geval)
            .collect();
        let s = summarize(&scores);
        println!();
        println!(
            "{difficulty:<7} n = {:<4} median {:.3}  mean {:.3}  share > 0.75: {:.1}%",
            s.n,
            s.median,
            s.mean,
            100.0 * s.share_above_075
        );
        print!("{}", Histogram::build(&scores, 10).render(40));
    }

    println!();
    println!("By difficulty × domain (median G-Eval / share > 0.75):");
    for difficulty in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
        let mut cells = Vec::new();
        for domain in [Domain::General, Domain::Technical] {
            let scores: Vec<f64> = run
                .group(difficulty, Some(domain))
                .iter()
                .map(|r| r.geval)
                .collect();
            let s = summarize(&scores);
            cells.push(format!(
                "{domain}: {:.3} / {:.0}% (n={})",
                s.median,
                100.0 * s.share_above_075,
                s.n
            ));
        }
        println!("  {difficulty:<7} {}", cells.join("   "));
    }

    println!();
    println!("Shape checks vs the paper:");
    let med = |d| {
        summarize(
            &run.group(d, None)
                .iter()
                .map(|r| r.geval)
                .collect::<Vec<_>>(),
        )
    };
    let easy = med(Difficulty::Easy);
    let medium = med(Difficulty::Medium);
    let hard = med(Difficulty::Hard);
    println!(
        "  over half of Easy above 0.75:   {:.1}% [{}]",
        100.0 * easy.share_above_075,
        ok(easy.share_above_075 > 0.5)
    );
    println!(
        "  degradation with complexity:    Easy {:.3} > Medium {:.3} > Hard {:.3} [{}]",
        easy.median,
        medium.median,
        hard.median,
        ok(easy.median > medium.median && medium.median > hard.median)
    );
    // Domain gap per difficulty: should be small and of inconsistent sign.
    let mut gaps = Vec::new();
    for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
        let g = summarize(
            &run.group(d, Some(Domain::General))
                .iter()
                .map(|r| r.geval)
                .collect::<Vec<_>>(),
        )
        .mean;
        let t = summarize(
            &run.group(d, Some(Domain::Technical))
                .iter()
                .map(|r| r.geval)
                .collect::<Vec<_>>(),
        )
        .mean;
        gaps.push(g - t);
    }
    let inconsistent = gaps.iter().any(|g| *g > 0.0) && gaps.iter().any(|g| *g < 0.0)
        || gaps.iter().all(|g| g.abs() < 0.1);
    println!(
        "  no consistent domain gap:       general-technical mean gaps = [{}] [{}]",
        gaps.iter()
            .map(|g| format!("{g:+.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        ok(inconsistent)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "MISMATCH"
    }
}
