//! Figure 1 — the ChatIYP architecture, demonstrated as a staged trace.
//!
//! The paper's Figure 1 is the pipeline diagram (user query → retrieval →
//! generation). This binary walks one question of each behavior class
//! through the stages and prints what every stage produced: the parsed
//! intent, the generated Cypher, the execution outcome, any semantic
//! fallback contexts with rerank scores, and the final answer.

use chatiyp_core::{ChatIyp, ChatIypConfig, Route};
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;

fn main() {
    let dataset = generate(&IypConfig::default());
    eprintln!(
        "graph: {} nodes / {} relationships",
        dataset.graph.node_count(),
        dataset.graph.rel_count()
    );
    let chat = ChatIyp::new(
        dataset,
        ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.5,
            },
            ..Default::default()
        },
    );

    let cases = [
        (
            "symbolic hit (the paper's worked example)",
            "What is the percentage of Japan's population in AS2497?",
        ),
        (
            "symbolic hit, aggregation",
            "Which AS serves the largest share of the population of Japan?",
        ),
        (
            "semantic fallback (no intent template matches)",
            "Tell me everything interesting about IIJ in Japan",
        ),
        (
            "sparse structured result (truthful 'no data' + context)",
            "Which IXPs are AS3356 and AS174 both members of?",
        ),
    ];

    for (label, question) in cases {
        println!();
        println!("════════════════════════════════════════════════════════════");
        println!("case: {label}");
        println!("════════════════════════════════════════════════════════════");
        println!("[1. user query]   {question}");
        let prompt = iyp_llm::prompt::render_text2cypher_prompt(question);
        println!(
            "[prompt chain]    {} chars (schema + {} few-shots); pass --show-prompt to print",
            prompt.len(),
            iyp_llm::prompt::default_few_shots().len()
        );
        if std::env::args().any(|a| a == "--show-prompt") {
            println!("{prompt}");
        }
        let r = chat.ask(question);
        match (&r.intent, &r.cypher) {
            (Some(intent), Some(cy)) => {
                println!("[2a. text2cypher] intent {:?}", intent.kind());
                println!("                  {cy}");
                match &r.query_result {
                    Some(result) if !result.is_empty() => {
                        println!("                  -> {} row(s)", result.len())
                    }
                    Some(_) => println!("                  -> empty result"),
                    None => println!("                  -> execution failed"),
                }
            }
            _ => println!("[2a. text2cypher] no usable query (intent not parsed)"),
        }
        if r.contexts.is_empty() {
            println!("[2b. vector]      (not used)");
        } else {
            println!("[2b. vector + 2c. rerank]");
            for c in &r.contexts {
                println!("                  [{:+.3}] {}", c.score, c.title);
            }
        }
        println!("[3. generation]   {}", r.answer);
        println!(
            "[route: {} | {} µs total]",
            r.route,
            r.timings.total.as_micros()
        );
        debug_assert!(matches!(
            r.route,
            Route::Cypher | Route::VectorFallback | Route::Failed
        ));
    }
}
