//! Ablation — the value of the retrieval cascade.
//!
//! The paper argues the cascade "provides robustness: when symbolic
//! translation fails or yields low recall, semantic retrieval ensures we
//! still return useful information". This table quantifies that by
//! running the same benchmark under four pipeline configurations:
//! text-to-Cypher only, + vector fallback, + reranker (full), and
//! vector-only.

use chatiyp_bench::{row, run_evaluation_on, ExperimentConfig};
use chatiyp_core::{ChatIypConfig, Route};
use cypher_eval::build_dataset;
use iyp_data::generate;
use iyp_metrics::stats::summarize;

fn main() {
    let base = ExperimentConfig::default();
    eprintln!(
        "running 4 pipeline configurations x {} questions (seed {}) ...",
        base.eval.target_size, base.data.seed
    );

    let arms: Vec<(&str, ChatIypConfig)> = vec![
        ("cypher-only", ChatIypConfig::cypher_only()),
        ("no-reranker", ChatIypConfig::without_reranker()),
        ("full", ChatIypConfig::default()),
        ("full+retry", ChatIypConfig::with_retry()),
        ("vector-only", ChatIypConfig::vector_only()),
    ];

    println!("Ablation — retrieval cascade configurations");
    println!("================================================================================");
    let widths = [14, 10, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "config".into(),
                "accuracy".into(),
                "mean G-Eval".into(),
                "cypher rt.".into(),
                "vector rt.".into(),
                "failed rt.".into(),
            ],
            &widths
        )
    );

    let mut runs = Vec::new();
    for (name, pipeline) in arms {
        let mut config = base.clone();
        config.pipeline = pipeline;
        // Regenerate the dataset per arm (generation is deterministic, so
        // every arm sees the identical graph and benchmark).
        let dataset = generate(&config.data);
        let bench = build_dataset(&dataset, &config.eval);
        let run = run_evaluation_on(&config, dataset, &bench);
        let geval_mean = summarize(&run.scores(iyp_metrics::MetricKind::GEval)).mean;
        let share = |route| {
            100.0 * run.records.iter().filter(|r| r.route == route).count() as f64
                / run.records.len() as f64
        };
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{:.1}%", 100.0 * run.accuracy()),
                    format!("{geval_mean:.3}"),
                    format!("{:.1}%", share(Route::Cypher)),
                    format!("{:.1}%", share(Route::VectorFallback)),
                    format!("{:.1}%", share(Route::Failed)),
                ],
                &widths
            )
        );
        runs.push((name, run));
    }

    // The paper's robustness claim is about *failed symbolic retrieval*:
    // compare the arms on exactly the questions whose translation produced
    // no usable query at all (NoQuery) — where cypher-only can only refuse.
    let full = &runs.iter().find(|(n, _)| *n == "full").expect("full arm").1;
    let cypher_only = &runs
        .iter()
        .find(|(n, _)| *n == "cypher-only")
        .expect("cypher-only arm")
        .1;
    let rescued_ids: Vec<usize> = full
        .records
        .iter()
        .filter(|r| r.generated_cypher.is_none())
        .map(|r| r.id)
        .collect();
    let mean_on = |run: &chatiyp_bench::EvaluationRun| {
        let v: Vec<f64> = run
            .records
            .iter()
            .filter(|r| rescued_ids.contains(&r.id))
            .map(|r| r.geval)
            .collect();
        summarize(&v).mean
    };
    let full_rescued = mean_on(full);
    let co_rescued = mean_on(cypher_only);
    println!();
    println!(
        "Rescue analysis — questions whose translation produced no query (n = {}):",
        rescued_ids.len()
    );
    println!(
        "  mean G-Eval with vector fallback {full_rescued:.3} vs cypher-only refusals {co_rescued:.3} [{}]",
        if full_rescued > co_rescued {
            "OK — semantic retrieval rescues failed symbolic translation"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  (On questions whose *correct* answer is empty, refusing scores better than \
         answering from context — the cascade trades that off for rescue coverage.)"
    );
}
