//! Measures what the compile-once/execute-many split buys on the
//! executor hot path.
//!
//! Every query of the 58-query parity corpus is parsed and slot-compiled
//! exactly once up front, then executed many times — the steady state a
//! plan-cached server lives in. Three arms, median-of-passes and
//! interleaved so drift hits all of them:
//!
//! 1. **interpreted** — compilation disabled, 1 worker (the pre-PR path)
//! 2. **compiled** — slot-compiled pipeline, 1 worker
//! 3. **parallel** — slot-compiled pipeline, all available cores
//!
//! The headline number is `compiled` vs `interpreted` at 1 worker: the
//! speedup from compilation alone, with parallelism out of the picture.
//! The target is ≥1.5x; the hard gate is a generous 1.2x so a noisy CI
//! container doesn't flake. Results are asserted byte-identical across
//! all arms before any timing is trusted, and the measured numbers are
//! written to `BENCH_exec.json` at the repository root.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin exec_hotpath [-- PASSES]
//! ```

use iyp_cypher::ast::Query;
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::{
    compile_query, execute_prepared_with_limits, parse, CompiledQuery, ExecLimits, Params,
};
use iyp_data::{generate, IypConfig};
use iyp_graphdb::Graph;
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// One timed pass of the prepared corpus under the given limits; seconds.
fn pass(graph: &Graph, prepared: &[(Query, CompiledQuery)], limits: ExecLimits) -> f64 {
    let params = Params::new();
    let t0 = Instant::now();
    for (q, c) in prepared {
        execute_prepared_with_limits(graph, q, Some(c), &params, limits)
            .expect("corpus query executes");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let passes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);

    let graph = generate(&IypConfig::default()).graph;

    // Compile once, up front — this cost is the plan cache's to amortize
    // and is deliberately outside every timed region.
    let prepared: Vec<(Query, CompiledQuery)> = PARITY_QUERIES
        .iter()
        .map(|src| {
            let q = parse(src).expect("corpus query parses");
            let c = compile_query(&q).expect("corpus query compiles");
            (q, c)
        })
        .collect();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let interpreted = ExecLimits::none().with_compiled(false);
    let compiled = ExecLimits::none();
    let parallel = ExecLimits::none().with_parallelism(workers);

    // Correctness before speed: all three arms must agree byte-for-byte.
    let params = Params::new();
    for (q, c) in &prepared {
        let a = execute_prepared_with_limits(&graph, q, Some(c), &params, interpreted);
        let b = execute_prepared_with_limits(&graph, q, Some(c), &params, compiled);
        let p = execute_prepared_with_limits(&graph, q, Some(c), &params, parallel);
        assert_eq!(a, b, "compiled result diverged from interpreted");
        assert_eq!(b, p, "parallel result diverged from sequential");
    }

    // Warm every arm (allocator, caches) before measuring.
    pass(&graph, &prepared, interpreted);
    pass(&graph, &prepared, compiled);
    pass(&graph, &prepared, parallel);

    let mut t_interp = Vec::with_capacity(passes);
    let mut t_compiled = Vec::with_capacity(passes);
    let mut t_parallel = Vec::with_capacity(passes);
    for _ in 0..passes {
        t_interp.push(pass(&graph, &prepared, interpreted));
        t_compiled.push(pass(&graph, &prepared, compiled));
        t_parallel.push(pass(&graph, &prepared, parallel));
    }
    let m_interp = median(&mut t_interp);
    let m_compiled = median(&mut t_compiled);
    let m_parallel = median(&mut t_parallel);
    let speedup = m_interp / m_compiled;
    let parallel_speedup = m_compiled / m_parallel;

    println!("corpus queries:        {}", prepared.len());
    println!("passes:                {passes} (median)");
    println!("available cores:       {workers}");
    println!("interpreted, 1 worker: {:.3}ms", m_interp * 1e3);
    println!("compiled,    1 worker: {:.3}ms", m_compiled * 1e3);
    println!("compiled, {workers:>2} workers: {:.3}ms", m_parallel * 1e3);
    println!("compile speedup:       {speedup:.2}x (target >=1.5x)");
    if workers == 1 {
        println!(
            "parallel speedup:      {parallel_speedup:.2}x — NOT MEANINGFUL: \
             only 1 core available, the parallel arm degenerates to sequential"
        );
    } else {
        println!("parallel speedup:      {parallel_speedup:.2}x over {workers} worker(s)");
    }

    let report = serde_json::json!({
        "bench": "exec_hotpath",
        "corpus_queries": prepared.len() as u64,
        "passes": passes as u64,
        "workers": workers as u64,
        "available_parallelism": workers as u64,
        "interpreted_ms": m_interp * 1e3,
        "compiled_ms": m_compiled * 1e3,
        "parallel_ms": m_parallel * 1e3,
        "compile_speedup": speedup,
        "parallel_speedup": parallel_speedup,
        // On a 1-core container the parallel arm cannot beat sequential;
        // readers of this file must not treat ~1.0x as a regression.
        "parallel_speedup_meaningful": workers > 1,
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_exec.json writes");
    println!("wrote {out}");

    // Generous gate: the target is 1.5x, but CI containers are noisy.
    assert!(
        speedup >= 1.2,
        "compile speedup {speedup:.2}x is below the 1.2x hard floor"
    );
    // The parallel gate only means something with real cores to fan out
    // to; on a 1-core container it is skipped, not silently "passed" at
    // ~1.0x.
    if workers > 1 {
        assert!(
            parallel_speedup >= 1.1,
            "parallel speedup {parallel_speedup:.2}x on {workers} cores is \
             below the 1.1x hard floor"
        );
    } else {
        println!("parallel-speedup gate skipped: available_parallelism == 1");
    }
}
