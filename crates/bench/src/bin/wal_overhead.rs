//! Prices the durability subsystem and proves recovery earns its keep:
//!
//! * **Ingest overhead** — median end-to-end `ChatIyp::ingest` latency
//!   at batch 100, in-memory vs WAL-backed under each fsync policy. The
//!   gate: `fsync=every_n` durable ingest must stay within **2x** the
//!   non-durable path — the WAL append is one serialized frame and an
//!   amortized fsync, not a second ingest.
//! * **Recovery speed** — WAL replay + one index rebuild vs re-ingesting
//!   the same batches through the real HTTP `/admin/ingest` endpoint
//!   (the operator's only alternative after a crash). The gate: replay
//!   must be at least **10x** faster — it skips HTTP, JSON decode, and
//!   the per-batch index refresh, paying one index build at the end.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin wal_overhead [-- ROUNDS]
//! ```
//!
//! Results are written to `BENCH_wal.json` at the repository root.

use chatiyp_core::{ChatIyp, ChatIypConfig, DurabilityConfig};
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::{DeltaBatch, FsyncPolicy};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

/// New ASes per ingest batch in the overhead arms (the ISSUE gate's
/// batch size).
const OVERHEAD_BATCH: usize = 100;
/// New ASes per batch in the recovery arm — smaller batches, more of
/// them: recovery cost scales with records, re-ingest with requests.
const RECOVERY_BATCH: usize = 20;
/// Recovery-arm records per overhead round: the recovery question is
/// about a WAL with real history behind it, so this arm writes several
/// records per round (120 at the default 30 rounds).
const RECOVERY_RECORDS_PER_ROUND: usize = 4;

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatiyp_wal_overhead_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pipeline_config() -> ChatIypConfig {
    ChatIypConfig::default()
}

/// `rounds` timed ingests of `batch_size` new ASes through `chat`;
/// per-ingest seconds.
fn timed_ingests(chat: &ChatIyp, rounds: usize, batch_size: usize) -> Vec<f64> {
    let mut samples = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let batch = {
            let handle = chat.resolve();
            growth_batch(handle.snapshot.graph(), 7000 + i as u64, batch_size)
        };
        let t0 = Instant::now();
        chat.ingest(&batch).expect("ingest");
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples
}

struct OverheadArm {
    label: String,
    ingest_ms_median: f64,
    ingest_ms_p99: f64,
}

/// Median/p99 durable-ingest latency under one fsync policy.
fn durable_arm(rounds: usize, fsync: FsyncPolicy) -> OverheadArm {
    let dir = fresh_dir(&format!("overhead_{}", fsync.as_str().replace(':', "_")));
    let dcfg = DurabilityConfig::new(&dir).with_fsync(fsync);
    let (chat, _) =
        ChatIyp::open_durable(pipeline_config(), &dcfg, || generate(&IypConfig::tiny()))
            .expect("open durable pipeline");
    let mut samples = timed_ingests(&chat, rounds, OVERHEAD_BATCH);
    OverheadArm {
        label: format!("durable fsync={}", fsync.as_str()),
        ingest_ms_median: percentile(&mut samples, 0.50) * 1e3,
        ingest_ms_p99: percentile(&mut samples, 0.99) * 1e3,
    }
}

/// One HTTP/1.1 POST over a fresh connection; returns the status code.
fn http_post(addr: std::net::SocketAddr, path: &str, body: &str) -> u16 {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("write request");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read reply");
    reply
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status")
}

struct RecoveryNumbers {
    records: usize,
    wal_bytes: u64,
    apply_ms: f64,
    index_build_ms: f64,
    replay_ms: f64,
    recovery_total_ms: f64,
    http_reingest_ms: f64,
    speedup: f64,
}

/// Writes `rounds` batches into a WAL, then prices both ways of getting
/// the graph back: recovery (replay + one index build) vs POSTing the
/// same batches to a fresh server's `/admin/ingest`.
fn recovery_arm(rounds: usize) -> RecoveryNumbers {
    let dir = fresh_dir("recovery");
    let dcfg = DurabilityConfig::new(&dir);
    let mut bodies = Vec::with_capacity(rounds);
    let wal_bytes;
    {
        let (chat, _) =
            ChatIyp::open_durable(pipeline_config(), &dcfg, || generate(&IypConfig::tiny()))
                .expect("open durable pipeline");
        for i in 0..rounds {
            let batch: DeltaBatch = {
                let handle = chat.resolve();
                growth_batch(handle.snapshot.graph(), 8000 + i as u64, RECOVERY_BATCH)
            };
            bodies.push(serde_json::to_string(&batch).expect("batch serializes"));
            chat.ingest(&batch).expect("ingest");
        }
        wal_bytes = chat.durability_stats().expect("durable").wal_bytes;
        // Dropped without a checkpoint: the WAL holds every record.
    }

    // Recovery: open the directory again and let replay do the work.
    let t0 = Instant::now();
    let (_chat, report) =
        ChatIyp::open_durable(pipeline_config(), &dcfg, || generate(&IypConfig::tiny()))
            .expect("recover");
    let recovery_total = t0.elapsed();
    assert_eq!(report.replayed as usize, rounds, "recovery missed records");
    let replay = report.replay + report.index_build;

    // The alternative: boot a fresh *durable* server (an in-memory one
    // would just lose the data again) and POST the very same batches to
    // `/admin/ingest` (captured pre-serialized — the timer covers the
    // wire, the decode, the per-batch index refresh, and the per-batch
    // WAL fsync, not the client-side JSON encoding).
    let reingest_dir = fresh_dir("reingest");
    let (reingest_chat, _) = ChatIyp::open_durable(
        pipeline_config(),
        &DurabilityConfig::new(&reingest_dir),
        || generate(&IypConfig::tiny()),
    )
    .expect("open re-ingest pipeline");
    let server = chatiyp_server::Server::start(
        reingest_chat,
        chatiyp_server::ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            ..Default::default()
        },
    )
    .expect("bind bench server");
    let t0 = Instant::now();
    for body in &bodies {
        assert_eq!(http_post(server.addr(), "/admin/ingest", body), 200);
    }
    let http_reingest = t0.elapsed();
    server.shutdown();

    RecoveryNumbers {
        records: rounds,
        wal_bytes,
        apply_ms: report.replay.as_secs_f64() * 1e3,
        index_build_ms: report.index_build.as_secs_f64() * 1e3,
        replay_ms: replay.as_secs_f64() * 1e3,
        recovery_total_ms: recovery_total.as_secs_f64() * 1e3,
        http_reingest_ms: http_reingest.as_secs_f64() * 1e3,
        speedup: http_reingest.as_secs_f64() / replay.as_secs_f64(),
    }
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);

    // In-memory baseline: the same ingest path with no WAL behind it.
    let plain = ChatIyp::new(generate(&IypConfig::tiny()), pipeline_config());
    let mut plain_samples = timed_ingests(&plain, rounds, OVERHEAD_BATCH);
    let plain_median_ms = percentile(&mut plain_samples, 0.50) * 1e3;
    let plain_p99_ms = percentile(&mut plain_samples, 0.99) * 1e3;
    drop(plain);

    let arms = [
        durable_arm(rounds, FsyncPolicy::EveryN(8)),
        durable_arm(rounds, FsyncPolicy::Always),
        durable_arm(rounds, FsyncPolicy::Off),
    ];

    println!("rounds per arm:        {rounds} (batch {OVERHEAD_BATCH} new ASes)");
    println!("in-memory ingest:      median {plain_median_ms:.3}ms  p99 {plain_p99_ms:.3}ms");
    for a in &arms {
        println!(
            "{:<22} median {:.3}ms  p99 {:.3}ms  ({:.2}x baseline)",
            format!("{}:", a.label),
            a.ingest_ms_median,
            a.ingest_ms_p99,
            a.ingest_ms_median / plain_median_ms
        );
    }

    let rec = recovery_arm(rounds * RECOVERY_RECORDS_PER_ROUND);
    println!(
        "recovery:              {} records ({} wal bytes) replayed in {:.1}ms \
         (apply {:.1}ms + index build {:.1}ms; boot total {:.1}ms); \
         HTTP re-ingest {:.1}ms → {:.1}x",
        rec.records,
        rec.wal_bytes,
        rec.replay_ms,
        rec.apply_ms,
        rec.index_build_ms,
        rec.recovery_total_ms,
        rec.http_reingest_ms,
        rec.speedup
    );

    let report = serde_json::json!({
        "bench": "wal_overhead",
        "rounds": rounds as u64,
        "overhead_batch_size": OVERHEAD_BATCH as u64,
        "in_memory_ingest_ms_median": plain_median_ms,
        "in_memory_ingest_ms_p99": plain_p99_ms,
        "arms": arms.iter().map(|a| serde_json::json!({
            "label": a.label,
            "ingest_ms_median": a.ingest_ms_median,
            "ingest_ms_p99": a.ingest_ms_p99,
            "overhead_vs_in_memory": a.ingest_ms_median / plain_median_ms,
        })).collect::<Vec<_>>(),
        "recovery": serde_json::json!({
            "records": rec.records as u64,
            "recovery_batch_size": RECOVERY_BATCH as u64,
            "wal_bytes": rec.wal_bytes,
            "replay_ms": rec.replay_ms,
            "recovery_total_ms": rec.recovery_total_ms,
            "http_reingest_ms": rec.http_reingest_ms,
            "replay_speedup_vs_http": rec.speedup,
        }),
    });
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report serializes") + "\n",
    )
    .expect("BENCH_wal.json writes");
    println!("wrote {out}");

    // Gate 1: amortized-fsync durability costs at most 2x in-memory.
    let every_n = &arms[0];
    assert!(
        every_n.ingest_ms_median <= 2.0 * plain_median_ms,
        "durable ingest ({}) median {:.3}ms exceeds 2x the in-memory \
         median {:.3}ms — the WAL append is supposed to be one frame \
         write, not a second ingest",
        every_n.label,
        every_n.ingest_ms_median,
        plain_median_ms
    );
    // Gate 2: replay beats HTTP re-ingest by at least 10x.
    assert!(
        rec.speedup >= 10.0,
        "WAL replay ({:.1}ms) is only {:.1}x faster than HTTP re-ingest \
         ({:.1}ms) — recovery must skip the per-batch index refresh, \
         not repeat it",
        rec.replay_ms,
        rec.speedup,
        rec.http_reingest_ms
    );
}
