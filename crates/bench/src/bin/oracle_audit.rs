//! Diagnostic: list benchmark questions the oracle-skill pipeline still
//! answers incorrectly (parser/benchmark bugs rather than model errors).

use chatiyp_bench::{run_evaluation, ExperimentConfig};
use iyp_llm::LmConfig;

fn main() {
    let mut config = ExperimentConfig::default();
    config.pipeline.lm = LmConfig {
        seed: 42,
        skill: 1.0,
        variety: 0.0,
    };
    let run = run_evaluation(&config);
    let misses: Vec<_> = run.records.iter().filter(|r| !r.correct).collect();
    println!("oracle misses: {}/{}", misses.len(), run.records.len());
    for m in misses {
        println!("#{} [{}] {}", m.id, m.kind, m.question);
        println!("  gold: {}", m.gold_cypher);
        println!(
            "  generated: {}",
            m.generated_cypher.as_deref().unwrap_or("—")
        );
    }
}
