//! Seed-robustness sweep: the paper's findings should not depend on one
//! particular synthetic graph or question sample. Re-runs the full
//! evaluation under several dataset/benchmark/model seeds and checks that
//! every headline shape survives.

use chatiyp_bench::{row, run_evaluation, ExperimentConfig};
use iyp_llm::Difficulty;
use iyp_metrics::correlation::point_biserial;
use iyp_metrics::stats::summarize;
use iyp_metrics::MetricKind;

fn main() {
    println!("Seed sweep — shape stability across dataset/benchmark/model seeds");
    println!("================================================================================");
    let widths = [6, 10, 12, 12, 12, 14, 14];
    println!(
        "{}",
        row(
            &[
                "seed".into(),
                "accuracy".into(),
                "easy acc".into(),
                "hard acc".into(),
                "G-Eval r".into(),
                "BERTScore r".into(),
                "G-Eval bimod.".into(),
            ],
            &widths
        )
    );
    let mut all_hold = true;
    for seed in [7u64, 42, 1234, 99999] {
        let mut config = ExperimentConfig::default();
        config.data.seed = seed;
        config.eval.seed = seed;
        config.pipeline.lm.seed = seed;
        config.judge_seed = seed ^ 0xABCD;
        let run = run_evaluation(&config);
        let labels = run.correctness();
        let acc_of = |d: Difficulty| {
            let g = run.group(d, None);
            g.iter().filter(|r| r.correct).count() as f64 / g.len().max(1) as f64
        };
        let geval_r = point_biserial(&run.scores(MetricKind::GEval), &labels);
        let bert_r = point_biserial(&run.scores(MetricKind::BertScore), &labels);
        let bimod = summarize(&run.scores(MetricKind::GEval)).bimodality;
        let easy = acc_of(Difficulty::Easy);
        let hard = acc_of(Difficulty::Hard);
        let holds = easy > hard && geval_r > bert_r && bimod > 0.555;
        all_hold &= holds;
        println!(
            "{}",
            row(
                &[
                    seed.to_string(),
                    format!("{:.1}%", 100.0 * run.accuracy()),
                    format!("{:.1}%", 100.0 * easy),
                    format!("{:.1}%", 100.0 * hard),
                    format!("{geval_r:.3}"),
                    format!("{bert_r:.3}"),
                    format!("{bimod:.3}"),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "All headline shapes (Easy > Hard, G-Eval best-aligned, G-Eval bimodal) hold at \
         every seed: [{}]",
        if all_hold { "OK" } else { "MISMATCH" }
    );
}
