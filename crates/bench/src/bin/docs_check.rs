//! Docs link checker: every relative Markdown link in the repository's
//! documentation must point at a file that exists, every `#anchor` must
//! match a real heading, and every backtick path reference (`crates/…`,
//! `docs/…`, …) must name a real file or directory. Run by CI so the
//! operator docs cannot silently rot as the tree moves.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin docs_check
//! ```
//!
//! Exits non-zero listing every broken reference.

use std::fs;
use std::path::{Path, PathBuf};

/// Markdown files checked: everything at the repository root plus
/// docs/. The change log and the issue scratchpad are excluded — they
/// describe past and future states of the tree, so their references
/// legitimately dangle.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    const EXCLUDED: [&str; 2] = ["CHANGES.md", "ISSUE.md"];
    let mut out = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            let name = e.file_name();
            if p.extension().is_some_and(|x| x == "md")
                && !EXCLUDED.iter().any(|x| name.to_string_lossy() == *x)
            {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// GitHub-style anchor slug for a heading: lowercase, spaces to
/// hyphens, punctuation except `-`/`_` dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else if c == '-' || c == '_' {
                Some(c)
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors in a Markdown file (fenced code excluded).
fn anchors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(h) = line.strip_prefix('#') {
            let title = h.trim_start_matches('#');
            out.push(slug(title));
        }
    }
    out
}

/// Extracts `[text](target)` link targets, skipping fenced code blocks
/// and inline code spans.
fn links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(end) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + end].to_string());
                        i += 1 + end;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Extracts backtick code spans that look like repository paths.
fn path_refs(text: &str) -> Vec<String> {
    const PREFIXES: [&str; 5] = ["crates/", "docs/", "examples/", "shims/", "tests/"];
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for (i, span) in line.split('`').enumerate() {
            // Odd split indices are inside backticks.
            if i % 2 == 1
                && PREFIXES.iter().any(|p| span.starts_with(p))
                && span
                    .chars()
                    .all(|c| c.is_alphanumeric() || "./_-".contains(c))
            {
                out.push(span.to_string());
            }
        }
    }
    out
}

fn main() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .canonicalize()
        .expect("repository root resolves");
    let files = doc_files(&root);
    assert!(!files.is_empty(), "no Markdown files found under {root:?}");

    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0usize;

    for file in &files {
        let text = fs::read_to_string(file).expect("doc file reads");
        let dir = file.parent().expect("doc file has a parent");
        let rel = file.strip_prefix(&root).unwrap_or(file).display();

        for target in links(&text) {
            // External links and mail addresses are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            checked += 1;
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            // `#anchor` alone refers to the current file.
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!("{rel}: link target missing: {target}"));
                continue;
            }
            if let Some(a) = anchor {
                if resolved.extension().is_some_and(|x| x == "md") {
                    let dest = fs::read_to_string(&resolved).expect("link target reads");
                    if !anchors(&dest).iter().any(|s| s == a) {
                        broken.push(format!("{rel}: anchor #{a} not found in {target}"));
                    }
                }
            }
        }

        for p in path_refs(&text) {
            checked += 1;
            // Trailing slash means a directory reference; both are
            // checked the same way.
            if !root.join(p.trim_end_matches('/')).exists() {
                broken.push(format!("{rel}: backtick path does not exist: {p}"));
            }
        }
    }

    println!(
        "docs_check: {} files, {checked} references checked",
        files.len()
    );
    if !broken.is_empty() {
        eprintln!("docs_check: {} broken references:", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
    println!("docs_check: all references resolve");
}
