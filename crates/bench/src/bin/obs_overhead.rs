//! Measures what the observability layer costs on the hot paths.
//!
//! Two comparisons, each median-of-passes over the same work:
//!
//! 1. **Tracing**: the full `ask` path with `trace_requests` on vs off,
//!    over a batch of distinct questions. This is the always-available
//!    per-request span tree (stage histograms record in both arms — they
//!    cannot be disabled, by design).
//! 2. **PROFILE**: the parity corpus via the plain executor vs
//!    `profile_with_limits`. PROFILE is opt-in per query, so its cost is
//!    reported for information, not gated.
//!
//! The tracing overhead target is <2%; the bench hard-fails only above a
//! generous 10% so a noisy container doesn't flake, while the printed
//! number is what docs/OBSERVABILITY.md cites.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin obs_overhead [-- PASSES]
//! ```

use chatiyp_core::{ChatIyp, ChatIypConfig};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::{profile_with_limits, ExecLimits, Params};
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;
use std::time::Instant;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn pipeline(trace_requests: bool) -> ChatIyp {
    let config = ChatIypConfig {
        lm: LmConfig {
            seed: 42,
            skill: 1.0,
            variety: 0.0,
        },
        trace_requests,
        ..Default::default()
    };
    ChatIyp::new(generate(&IypConfig::tiny()), config)
}

/// One timed pass of the question batch through a pipeline; seconds.
fn ask_pass(chat: &ChatIyp, questions: &[String]) -> f64 {
    let t0 = Instant::now();
    for q in questions {
        chat.ask(q);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let passes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);

    // -- 1. Tracing overhead on the ask path ---------------------------
    let dataset = generate(&IypConfig::tiny());
    let questions: Vec<String> = dataset
        .ases
        .iter()
        .flat_map(|a| {
            [
                format!("What is the name of AS{}?", a.asn),
                format!("In which country is AS{} registered?", a.asn),
            ]
        })
        .collect();

    let untraced = pipeline(false);
    let traced = pipeline(true);
    assert!(!untraced.config().trace_requests && traced.config().trace_requests);

    // Warm both arms (caches, allocator) before measuring.
    ask_pass(&untraced, &questions);
    ask_pass(&traced, &questions);

    // Interleave the arms so drift (thermal, scheduler) hits both.
    let mut t_untraced = Vec::with_capacity(passes);
    let mut t_traced = Vec::with_capacity(passes);
    for _ in 0..passes {
        t_untraced.push(ask_pass(&untraced, &questions));
        t_traced.push(ask_pass(&traced, &questions));
    }
    let m_untraced = median(&mut t_untraced);
    let m_traced = median(&mut t_traced);
    let trace_overhead = (m_traced - m_untraced) / m_untraced * 100.0;

    println!("questions per pass:   {}", questions.len());
    println!("passes:               {passes} (median)");
    println!("ask, tracing off:     {:.3}ms", m_untraced * 1e3);
    println!("ask, tracing on:      {:.3}ms", m_traced * 1e3);
    println!("tracing overhead:     {trace_overhead:+.2}% (target <2%)");

    // -- 2. PROFILE cost on the executor -------------------------------
    let graph = generate(&IypConfig::default()).graph;
    let params = Params::new();
    let mut t_plain = Vec::with_capacity(passes);
    let mut t_profiled = Vec::with_capacity(passes);
    for _ in 0..passes {
        let t0 = Instant::now();
        for q in PARITY_QUERIES {
            iyp_cypher::query(&graph, q).expect("corpus query executes");
        }
        t_plain.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for q in PARITY_QUERIES {
            profile_with_limits(&graph, q, &params, ExecLimits::none())
                .expect("corpus query profiles");
        }
        t_profiled.push(t0.elapsed().as_secs_f64());
    }
    let m_plain = median(&mut t_plain);
    let m_profiled = median(&mut t_profiled);
    println!("corpus, plain:        {:.3}ms", m_plain * 1e3);
    println!("corpus, PROFILE:      {:.3}ms", m_profiled * 1e3);
    println!(
        "PROFILE cost:         {:+.2}% (opt-in per query, informational)",
        (m_profiled - m_plain) / m_plain * 100.0
    );

    // Generous gate: the target is <2%, but CI containers are noisy.
    assert!(
        trace_overhead < 10.0,
        "tracing overhead {trace_overhead:.2}% exceeds the 10% hard ceiling"
    );
}
