//! Measures the parallel evaluation harness: wall-clock of the full
//! benchmark run at 1 thread vs N threads, verifying the records agree.
//!
//! ```text
//! cargo run --release -p chatiyp-bench --bin eval_speedup [-- THREADS]
//! ```

use chatiyp_bench::{run_evaluation_on, EvaluationRun, ExperimentConfig};
use cypher_eval::build_dataset;
use iyp_data::generate;
use std::time::Instant;

fn timed_run(config: &ExperimentConfig) -> (EvaluationRun, f64) {
    // Regenerate per run so neither run warms caches for the other.
    let dataset = generate(&config.data);
    let bench = build_dataset(&dataset, &config.eval);
    let t0 = Instant::now();
    let run = run_evaluation_on(config, dataset, &bench);
    (run, t0.elapsed().as_secs_f64())
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let base = ExperimentConfig::small();
    let (seq, t_seq) = timed_run(&ExperimentConfig {
        threads: 1,
        ..base.clone()
    });
    let (par, t_par) = timed_run(&ExperimentConfig { threads, ..base });

    assert_eq!(seq.records.len(), par.records.len());
    let identical = seq
        .records
        .iter()
        .zip(&par.records)
        .all(|(a, b)| a.answer == b.answer && a.correct == b.correct && a.geval == b.geval);

    println!("questions:        {}", seq.records.len());
    println!("sequential (1t):  {t_seq:.3}s");
    println!("parallel   ({threads}t):  {t_par:.3}s");
    println!("speedup:          {:.2}x", t_seq / t_par);
    println!("records identical: {identical}");
    assert!(identical, "parallel run diverged from sequential");
}
