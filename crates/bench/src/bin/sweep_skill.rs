//! Calibration sweep: how the simulated model's `skill` knob moves the
//! evaluation. This is the reproduction's sensitivity analysis — it shows
//! that the paper-shaped results are not an artifact of one magic
//! constant: every skill level preserves the difficulty gradient, and the
//! default (0.62) sits where Easy is strong and Hard clearly degrades.

use chatiyp_bench::{row, run_evaluation, ExperimentConfig};
use iyp_llm::Difficulty;
use iyp_metrics::stats::summarize;

fn main() {
    println!("Skill sweep — accuracy and G-Eval by difficulty");
    println!("================================================================================");
    let widths = [7, 10, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "skill".into(),
                "accuracy".into(),
                "G-Eval mean".into(),
                "easy acc".into(),
                "medium acc".into(),
                "hard acc".into(),
            ],
            &widths
        )
    );
    for skill in [0.3, 0.45, 0.62, 0.8, 1.0] {
        let mut config = ExperimentConfig::default();
        config.pipeline.lm.skill = skill;
        let run = run_evaluation(&config);
        let acc_of = |d: Difficulty| {
            let g = run.group(d, None);
            if g.is_empty() {
                0.0
            } else {
                g.iter().filter(|r| r.correct).count() as f64 / g.len() as f64
            }
        };
        let geval = summarize(&run.scores(iyp_metrics::MetricKind::GEval)).mean;
        println!(
            "{}",
            row(
                &[
                    format!("{skill:.2}"),
                    format!("{:.1}%", 100.0 * run.accuracy()),
                    format!("{geval:.3}"),
                    format!("{:.1}%", 100.0 * acc_of(Difficulty::Easy)),
                    format!("{:.1}%", 100.0 * acc_of(Difficulty::Medium)),
                    format!("{:.1}%", 100.0 * acc_of(Difficulty::Hard)),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "Expected shape: accuracy rises monotonically with skill; the Easy > Medium > Hard \
         ordering holds at every level below 1.0; skill 1.0 (oracle) answers every \
         parseable question from the gold query."
    );
}
