//! Export the evaluation artifacts the paper publishes alongside its
//! source: the benchmark dataset (questions + gold Cypher + labels), the
//! graph snapshot, and the full per-question evaluation records.
//!
//! Writes to `./artifacts/` (or the directory given as the first
//! argument):
//! * `cypher_eval.json` — the 312-question benchmark
//! * `iyp_graph.json` — the synthetic IYP graph snapshot
//! * `evaluation_records.json` — per-question pipeline outputs and all
//!   four metric scores
//! * `iyp_graph.cypher` — the graph as a replayable Cypher script

use chatiyp_bench::{run_evaluation_on, ExperimentConfig};
use cypher_eval::build_dataset;
use iyp_data::generate;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "artifacts".to_string())
        .into();
    std::fs::create_dir_all(&dir).expect("create artifact directory");

    let config = ExperimentConfig::default();
    eprintln!(
        "generating dataset and benchmark (seed {}) ...",
        config.data.seed
    );
    let dataset = generate(&config.data);
    let bench = build_dataset(&dataset, &config.eval);

    let bench_path = dir.join("cypher_eval.json");
    std::fs::write(&bench_path, bench.to_json()).expect("write benchmark");
    println!(
        "wrote {} ({} questions)",
        bench_path.display(),
        bench.items.len()
    );

    let graph_path = dir.join("iyp_graph.json");
    iyp_graphdb::snapshot::save(&dataset.graph, &graph_path).expect("write snapshot");
    println!(
        "wrote {} ({} nodes, {} rels)",
        graph_path.display(),
        dataset.graph.node_count(),
        dataset.graph.rel_count()
    );

    let script_path = dir.join("iyp_graph.cypher");
    std::fs::write(
        &script_path,
        iyp_data::export::to_cypher_script(&dataset.graph),
    )
    .expect("write cypher script");
    println!("wrote {}", script_path.display());

    eprintln!("running the evaluation ...");
    let run = run_evaluation_on(&config, dataset, &bench);
    let records_path = dir.join("evaluation_records.json");
    std::fs::write(
        &records_path,
        serde_json::to_string_pretty(&run).expect("records serialize"),
    )
    .expect("write records");
    println!(
        "wrote {} ({} records, accuracy {:.1}%)",
        records_path.display(),
        run.records.len(),
        100.0 * run.accuracy()
    );
}
