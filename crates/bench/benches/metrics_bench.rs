//! Metric computation cost: BLEU vs ROUGE vs BERTScore vs G-Eval on a
//! representative answer/reference pair.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_metrics::{bertscore, bleu, rouge, GEval};
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let question = "What is the percentage of Japan's population in AS2497?";
    let answer =
        "According to IYP, the share of Japan's population served by AS2497 is 33.3 percent, \
         making it one of the largest eyeball networks in the country.";
    let reference =
        "The correct share of Japan's population served by AS2497 equals 33.3; it is the \
         largest eyeball network registered in Japan per the annotated query.";
    let geval = GEval::new(42);

    let mut group = c.benchmark_group("metrics");
    group.bench_function("bleu", |b| {
        b.iter(|| black_box(bleu(black_box(answer), black_box(reference))))
    });
    group.bench_function("rouge", |b| {
        b.iter(|| black_box(rouge(black_box(answer), black_box(reference))))
    });
    group.bench_function("bertscore", |b| {
        b.iter(|| black_box(bertscore(black_box(answer), black_box(reference))))
    });
    group.bench_function("geval", |b| {
        b.iter(|| {
            black_box(geval.score(black_box(question), black_box(answer), black_box(reference)))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_metrics
}
criterion_main!(benches);
