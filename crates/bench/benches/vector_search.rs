//! Vector retrieval performance: embedding a query and searching the
//! node-description corpus (flat and bucketed indexes).

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_data::{describe_all, generate, IypConfig};
use iyp_embed::{BucketIndex, DocStore, Embedder, FlatIndex, DEFAULT_DIM};
use std::hint::black_box;

fn bench_vector(c: &mut Criterion) {
    let d = generate(&IypConfig::default());
    let docs = describe_all(&d.graph);
    let embedder = Embedder::default();

    let mut store = DocStore::new();
    let mut flat = FlatIndex::new();
    let mut bucket = BucketIndex::new(DEFAULT_DIM);
    for doc in &docs {
        store.add(doc.title.clone(), doc.text.clone(), doc.node.0);
        let v = embedder.embed(&format!("{} {}", doc.title, doc.text));
        flat.add(v.clone());
        bucket.add(v);
    }
    let query = "Which Japanese networks serve the largest population share?";
    let qv = embedder.embed(query);

    let mut group = c.benchmark_group("vector_search");
    group.throughput(criterion::Throughput::Elements(docs.len() as u64));
    group.bench_function("embed_query", |b| {
        b.iter(|| black_box(embedder.embed(black_box(query))))
    });
    group.bench_function("flat_top8", |b| {
        b.iter(|| black_box(flat.search(black_box(&qv), 8)))
    });
    group.bench_function("bucket_top8_probe16", |b| {
        b.iter(|| black_box(bucket.search(black_box(&qv), 8, 16)))
    });
    group.bench_function("docstore_end_to_end", |b| {
        b.iter(|| black_box(store.search(black_box(query), 8)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_vector
}
criterion_main!(benches);
