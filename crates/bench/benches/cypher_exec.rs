//! Cypher engine throughput over the synthetic IYP graph: index seeks,
//! label scans, expansions, aggregations and variable-length paths.

use criterion::{criterion_group, criterion_main, Criterion};
use iyp_cypher::{query, query_with_deadline, Params};
use iyp_data::{generate, IypConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_cypher(c: &mut Criterion) {
    let d = generate(&IypConfig::default());
    let g = &d.graph;
    let mut group = c.benchmark_group("cypher_exec");

    group.bench_function("index_seek", |b| {
        b.iter(|| black_box(query(g, "MATCH (a:AS {asn: 2497}) RETURN a.name").unwrap()))
    });
    group.bench_function("one_hop_expand", |b| {
        b.iter(|| {
            black_box(
                query(
                    g,
                    "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix) RETURN count(p)",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("label_scan_aggregate", |b| {
        b.iter(|| {
            black_box(
                query(
                    g,
                    "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
                     RETURN c.country_code, count(a) ORDER BY count(a) DESC LIMIT 10",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("two_hop_join", |b| {
        b.iter(|| {
            black_box(
                query(
                    g,
                    "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP {name: 'Tokyo-IX'}), \
                     (a)-[:COUNTRY]->(c:Country {country_code: 'JP'}) RETURN count(a)",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("varlength_1_3", |b| {
        b.iter(|| {
            black_box(
                query(
                    g,
                    "MATCH (a:AS {asn: 64500})-[:DEPENDS_ON*1..3]->(u:AS) \
                     RETURN count(DISTINCT u.asn)",
                )
                .unwrap_or_default(),
            )
        })
    });
    group.bench_function("ordered_top_k", |b| {
        b.iter(|| {
            black_box(
                query(
                    g,
                    "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) \
                     RETURN d.name, r.rank ORDER BY r.rank LIMIT 10",
                )
                .unwrap(),
            )
        })
    });
    group.finish();

    // Deadline-check amortization: the same scan-heavy query with and
    // without a wall-clock deadline. The gap is the price of deadline
    // enforcement, which stride-256 clock reads keep near zero.
    let mut group = c.benchmark_group("deadline_overhead");
    let scan = "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
                RETURN c.country_code, count(a) ORDER BY count(a) DESC LIMIT 10";
    group.bench_function("label_scan_no_deadline", |b| {
        b.iter(|| black_box(query(g, scan).unwrap()))
    });
    group.bench_function("label_scan_with_deadline", |b| {
        let params = Params::new();
        b.iter(|| {
            black_box(query_with_deadline(g, scan, &params, Duration::from_secs(60)).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cypher
}
criterion_main!(benches);
