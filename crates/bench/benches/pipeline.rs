//! End-to-end pipeline latency: `ask()` by question difficulty and route.

use chatiyp_core::{ChatIyp, ChatIypConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;
use std::hint::black_box;

fn build() -> ChatIyp {
    ChatIyp::new(
        generate(&IypConfig::tiny()),
        ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..Default::default()
        },
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let chat = build();
    let mut group = c.benchmark_group("pipeline");
    group.bench_function("ask_easy_lookup", |b| {
        b.iter(|| black_box(chat.ask(black_box("What is the name of AS2497?"))))
    });
    group.bench_function("ask_easy_population", |b| {
        b.iter(|| {
            black_box(chat.ask(black_box(
                "What is the percentage of Japan's population in AS2497?",
            )))
        })
    });
    group.bench_function("ask_medium_aggregation", |b| {
        b.iter(|| {
            black_box(chat.ask(black_box(
                "Which AS serves the largest share of the population of Japan?",
            )))
        })
    });
    group.bench_function("ask_hard_varlength", |b| {
        b.iter(|| {
            black_box(chat.ask(black_box(
                "Which ASes does AS2497 depend on directly or indirectly?",
            )))
        })
    });
    group.bench_function("ask_vector_fallback", |b| {
        b.iter(|| {
            black_box(chat.ask(black_box(
                "Tell me everything interesting about IIJ in Japan",
            )))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pipeline
}
criterion_main!(benches);
