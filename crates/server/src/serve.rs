//! The threaded server: an acceptor feeding a fixed worker pool over a
//! crossbeam channel, with graceful shutdown.

use crate::api::{handle, AppState};
use crate::http::{HttpError, Response};
use chatiyp_core::ChatIyp;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Use port 0 to let the OS choose (tests do).
    pub addr: SocketAddr,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Admission-queue bound: connections accepted but not yet picked up
    /// by a worker. When the queue is full the acceptor *sheds* instead
    /// of queueing unboundedly — the connection gets an immediate
    /// `429 Too Many Requests` + `Retry-After` and is closed, and the
    /// shed counter (`/stats` → `resilience.shed`,
    /// `chatiyp_shed_total` in `/metrics`) increments.
    pub queue_capacity: usize,
    /// How long an accepted connection may wait in the admission queue
    /// before its first request is abandoned with `504 Gateway Timeout`.
    /// A request a worker has already started is never cut off. `None`
    /// disables the check.
    pub queue_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8047".parse().expect("valid literal addr"),
            workers: 4,
            read_timeout: Duration::from_secs(10),
            queue_capacity: 128,
            queue_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the acceptor and drains the workers.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and spawns the acceptor + worker pool with a ready pipeline.
    /// Workers share one [`AppState`]; every request resolves the current
    /// graph snapshot through it.
    pub fn start(chat: ChatIyp, config: ServerConfig) -> std::io::Result<Server> {
        Self::start_with_state(Arc::new(AppState::ready(Arc::new(chat))), config)
    }

    /// Binds and starts serving **before** the pipeline exists: the
    /// socket accepts immediately, every endpoint answers 503 +
    /// `Retry-After`, and `builder` runs on a background thread. Once it
    /// returns, its pipeline is published and `GET /healthz` flips to
    /// 200 — the load-balancer-friendly way to boot a server whose
    /// dataset takes a while to generate or load from disk.
    pub fn start_deferred<F>(config: ServerConfig, builder: F) -> std::io::Result<Server>
    where
        F: FnOnce() -> ChatIyp + Send + 'static,
    {
        let state = Arc::new(AppState::deferred());
        let publisher = Arc::clone(&state);
        std::thread::Builder::new()
            .name("chatiyp-loader".into())
            .spawn(move || {
                publisher.publish(Arc::new(builder()));
            })
            .expect("spawn loader");
        Self::start_with_state(state, config)
    }

    fn start_with_state(state: Arc<AppState>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        type Queued = (TcpStream, Instant);
        let (tx, rx): (Sender<Queued>, Receiver<Queued>) = bounded(config.queue_capacity.max(1));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let state = Arc::clone(&state);
            let read_timeout = config.read_timeout;
            let queue_deadline = config.queue_deadline;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("chatiyp-worker-{i}"))
                    .spawn(move || worker_loop(rx, state, read_timeout, queue_deadline))
                    .expect("spawn worker"),
            );
        }

        let stop_accept = Arc::clone(&stop);
        let shed_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("chatiyp-acceptor".into())
            .spawn(move || {
                while !stop_accept.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Bounded admission: a full queue sheds the
                            // connection with an immediate 429 instead of
                            // queueing work the pool cannot reach — in-
                            // flight and already-queued requests keep
                            // their workers.
                            match tx.try_send((stream, Instant::now())) {
                                Ok(()) => {}
                                Err(TrySendError::Full((stream, _))) => {
                                    shed_state.note_shed();
                                    shed(stream);
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                // Dropping tx closes the channel; workers drain and exit.
            })
            .expect("spawn acceptor");

        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// The load-shed reply: `429` + `Retry-After`, written inline by the
/// acceptor (the body is a handful of bytes; socket buffers absorb it)
/// before the connection is closed.
fn shed(stream: TcpStream) {
    let resp = Response::json(
        429,
        r#"{"error":"server overloaded, request shed"}"#.as_bytes().to_vec(),
    )
    .with_header("retry-after", "1");
    reject(stream, resp);
}

/// Writes a rejection response and closes the connection without
/// triggering a TCP reset. The client has usually already sent request
/// bytes the server never read; closing with unread data pending makes
/// the kernel send RST, which discards the in-flight reply at the
/// client. Shutting down the write half first and briefly draining the
/// read half lets the status line land before the socket dies. The
/// drain is bounded (timeout + byte cap) so a hostile peer cannot pin
/// the caller.
fn reject(mut stream: TcpStream, resp: Response) {
    if resp.write_conn(&mut stream, false).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(
    rx: Receiver<(TcpStream, Instant)>,
    state: Arc<AppState>,
    read_timeout: Duration,
    queue_deadline: Option<Duration>,
) {
    // The loop ends when the acceptor drops the sender.
    while let Ok((stream, accepted_at)) = rx.recv() {
        // A connection that waited in the admission queue past the
        // deadline gets an honest 504 instead of a stale answer; the
        // client has likely timed out already. Requests a worker has
        // begun serving are never cut off.
        if queue_deadline.is_some_and(|d| accepted_at.elapsed() > d) {
            let resp = Response::json(
                504,
                r#"{"error":"timed out waiting in the admission queue"}"#
                    .as_bytes()
                    .to_vec(),
            )
            .with_header("retry-after", "1");
            reject(stream, resp);
            continue;
        }
        let _ = stream.set_read_timeout(Some(read_timeout));
        serve_connection(stream, &state);
    }
}

/// Serves one connection: keep-alive loop with a per-connection buffered
/// reader (so pipelined request bytes survive between reads), bounded by
/// [`crate::http::MAX_REQUESTS_PER_CONN`].
fn serve_connection(stream: TcpStream, state: &AppState) {
    use crate::http::{read_request_buffered, MAX_REQUESTS_PER_CONN};
    let mut reader = std::io::BufReader::new(stream);
    for served in 0..MAX_REQUESTS_PER_CONN {
        let parsed = read_request_buffered(&mut reader);
        let (response, keep_alive) = match parsed {
            Ok(req) => {
                let keep = req.wants_keep_alive() && served + 1 < MAX_REQUESTS_PER_CONN;
                (handle(state, &req), keep)
            }
            Err(HttpError::TooLarge) => (
                Response::json(413, r#"{"error":"body too large"}"#.as_bytes().to_vec()),
                false,
            ),
            Err(HttpError::BadRequest(m)) => (
                Response::json(
                    400,
                    serde_json::json!({ "error": m }).to_string().into_bytes(),
                ),
                false,
            ),
            // End of a keep-alive session: close quietly, no 400 into a
            // socket the peer already abandoned.
            Err(HttpError::Closed) => return,
            Err(HttpError::Truncated(m)) => (
                Response::json(
                    400,
                    serde_json::json!({ "error": format!("truncated request: {m}") })
                        .to_string()
                        .into_bytes(),
                ),
                false,
            ),
            Err(HttpError::Io(_)) => return, // peer went away / idle timeout
        };
        if response.write_conn(reader.get_mut(), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatiyp_core::ChatIypConfig;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;
    use std::io::{Read, Write};

    fn start_test_server() -> Server {
        let chat = ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
        );
        Server::start(
            chat,
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                workers: 2,
                read_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .expect("server starts")
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        // `Connection: close` so read_to_string terminates promptly.
        let raw = raw.replacen("\r\n", "\r\nConnection: close\r\n", 1);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn end_to_end_ask_over_tcp() {
        let server = start_test_server();
        let body = r#"{"question":"What is the name of AS2497?"}"#;
        let raw = format!(
            "POST /ask HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let reply = request(server.addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
        assert!(reply.contains("IIJ"), "reply: {reply}");
        server.shutdown();
    }

    #[test]
    fn health_over_tcp_and_concurrent_clients() {
        let server = start_test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || request(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n"))
            })
            .collect();
        for h in handles {
            let reply = h.join().unwrap();
            assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_not_hang() {
        let server = start_test_server();
        let reply = request(server.addr(), "GARBAGE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "reply: {reply}");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use std::io::{BufRead, BufReader};
        let server = start_test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let mut reader = BufReader::new(stream);

        for i in 0..3 {
            reader
                .get_mut()
                .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Status line.
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "req {i}: {line}");
            // Headers until blank; find content-length and keep-alive.
            let mut content_length = 0usize;
            let mut connection = String::new();
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                let h = h.trim_end();
                if h.is_empty() {
                    break;
                }
                if let Some(v) = h.strip_prefix("content-length: ") {
                    content_length = v.parse().unwrap();
                }
                if let Some(v) = h.strip_prefix("connection: ") {
                    connection = v.to_string();
                }
            }
            assert_eq!(connection, "keep-alive", "req {i}");
            let mut body = vec![0u8; content_length];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(String::from_utf8_lossy(&body).contains("\"status\":\"ok\""));
        }
        server.shutdown();
    }

    #[test]
    fn clean_keep_alive_close_gets_no_spurious_400() {
        use std::io::BufReader;
        use std::net::Shutdown;
        let server = start_test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        reader
            .get_mut()
            .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        // Read the one keep-alive response fully.
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 200"), "{line}");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            std::io::BufRead::read_line(&mut reader, &mut h).unwrap();
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.strip_prefix("content-length: ") {
                content_length = v.parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut reader, &mut body).unwrap();
        // Now end the session cleanly. Previously the server answered the
        // EOF with a 400; it must close with no further bytes.
        reader.get_mut().shutdown(Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "server wrote after clean close: {}",
            String::from_utf8_lossy(&rest)
        );
        server.shutdown();
    }

    #[test]
    fn truncated_request_gets_400() {
        use std::net::Shutdown;
        let server = start_test_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        // EOF mid-headers: previously parsed as a complete request.
        s.write_all(b"POST /ask HTTP/1.1\r\nHost: t\r\n").unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "reply: {out}");
        assert!(out.contains("truncated"), "reply: {out}");
        server.shutdown();
    }

    #[test]
    fn http10_defaults_to_close() {
        let server = start_test_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /health HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap(); // returns promptly: server closes
        assert!(out.contains("connection: close"), "{out}");
        server.shutdown();
    }

    #[test]
    fn worker_survives_client_disconnecting_mid_request() {
        let server = start_test_server();
        // Client declares a body it never sends, then vanishes: the read
        // times out / errors and the worker moves on.
        for _ in 0..3 {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 500\r\n\r\n{half")
                .unwrap();
            drop(s); // disconnect mid-body
        }
        // The pool must still serve real requests afterwards.
        let reply = request(server.addr(), "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        server.shutdown();
    }

    /// A deferred server accepts connections immediately, answers 503 +
    /// Retry-After while the pipeline builds, and flips `/healthz` to
    /// 200 once the loader publishes — without dropping a single
    /// connection along the way.
    #[test]
    fn deferred_start_serves_503_then_flips_ready() {
        use std::sync::mpsc;
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let server = Server::start_deferred(
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                workers: 2,
                read_timeout: Duration::from_secs(2),
                ..Default::default()
            },
            move || {
                // Hold the pipeline back until the test has observed 503.
                release_rx.recv().ok();
                ChatIyp::new(
                    generate(&IypConfig::tiny()),
                    ChatIypConfig {
                        lm: LmConfig {
                            seed: 42,
                            skill: 1.0,
                            variety: 0.0,
                        },
                        ..Default::default()
                    },
                )
            },
        )
        .expect("server starts");

        let probe = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
        let reply = request(server.addr(), probe);
        assert!(reply.starts_with("HTTP/1.1 503"), "reply: {reply}");
        assert!(reply.contains("retry-after: 1"), "reply: {reply}");
        // Non-probe endpoints refuse too, rather than hanging.
        let reply = request(server.addr(), "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 503"), "reply: {reply}");

        release_tx.send(()).unwrap();
        // Poll until ready (the loader thread needs a moment).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let reply = request(server.addr(), probe);
            if reply.starts_with("HTTP/1.1 200") {
                assert!(reply.contains("\"status\":\"ready\""), "reply: {reply}");
                assert!(reply.contains("\"graph_version\":1"), "reply: {reply}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never became ready; last reply: {reply}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // And the full API works after readiness.
        let reply = request(server.addr(), "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        server.shutdown();
    }

    /// Live ingest over HTTP: POST /admin/ingest swaps in a new version
    /// while /cypher readers keep answering; afterwards reads see the
    /// grown graph.
    #[test]
    fn ingest_over_tcp_swaps_versions() {
        let server = start_test_server();
        let count_raw = || {
            let body = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
            format!(
                "POST /cypher HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        };
        let before = request(server.addr(), &count_raw());
        assert!(before.starts_with("HTTP/1.1 200"), "{before}");

        let mut batch = iyp_graphdb::DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64999i64));
        let body = serde_json::to_string(&batch).unwrap();
        let raw = format!(
            "POST /admin/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let reply = request(server.addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
        assert!(reply.contains("\"old_version\":1"), "reply: {reply}");
        assert!(reply.contains("\"new_version\":2"), "reply: {reply}");

        let after = request(server.addr(), &count_raw());
        let count_of = |resp: &str| -> i64 {
            let json = resp.split("\r\n\r\n").nth(1).unwrap();
            let v: serde_json::Value = serde_json::from_str(json).unwrap();
            v["rows"][0][0].as_i64().unwrap()
        };
        assert_eq!(count_of(&after), count_of(&before) + 1);
        server.shutdown();
    }

    /// A tiny server (one worker, one queue slot) for overload tests.
    fn start_tiny_server(queue_deadline: Option<Duration>) -> Server {
        let chat = ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
        );
        Server::start(
            chat,
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                workers: 1,
                read_timeout: Duration::from_secs(2),
                queue_capacity: 1,
                queue_deadline,
            },
        )
        .expect("server starts")
    }

    /// Opens a connection and parks the single worker on it: the worker
    /// blocks reading a request that never completes until the stream is
    /// dropped (read error) or the read timeout fires.
    fn hold_worker(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /ask HTTP/1.1\r\nHost: t\r\n").unwrap();
        // Give the worker a moment to dequeue the connection.
        std::thread::sleep(Duration::from_millis(150));
        s
    }

    /// The acceptance overload test: with the single worker held and the
    /// one-slot queue full, flooding yields immediate 429s with
    /// `Retry-After` while queued requests still complete, and the shed
    /// count shows up in `/stats` and `/metrics`.
    #[test]
    fn overload_sheds_429_while_queued_requests_complete() {
        let server = start_tiny_server(Some(Duration::from_secs(30)));
        let addr = server.addr();
        let held = hold_worker(addr);

        // Flood: the first connection takes the queue slot, the rest are
        // shed by the acceptor. Each reader thread collects its reply.
        let floods: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                        .unwrap();
                    let mut out = String::new();
                    let _ = s.read_to_string(&mut out);
                    out
                })
            })
            .collect();

        // Let the acceptor process the whole flood, then release the
        // worker so queued connections drain.
        std::thread::sleep(Duration::from_millis(300));
        drop(held);

        let replies: Vec<String> = floods.into_iter().map(|h| h.join().unwrap()).collect();
        let sheds = replies
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 429"))
            .count();
        let served = replies
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 200"))
            .count();
        assert!(sheds >= 1, "no connection was shed: {replies:?}");
        assert!(served >= 1, "no queued request completed: {replies:?}");
        for r in replies.iter().filter(|r| r.starts_with("HTTP/1.1 429")) {
            assert!(
                r.contains("retry-after: 1"),
                "shed reply lacks retry-after: {r}"
            );
            assert!(r.contains("request shed"), "shed reply body: {r}");
        }

        // The sheds are visible to operators.
        let stats = request(addr, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        let json = stats.split("\r\n\r\n").nth(1).unwrap();
        let v: serde_json::Value = serde_json::from_str(json).unwrap();
        assert_eq!(v["resilience"]["shed"].as_u64(), Some(sheds as u64), "{v}");
        let metrics = request(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            metrics.contains(&format!("chatiyp_shed_total {sheds}")),
            "{metrics}"
        );
        server.shutdown();
    }

    /// A connection that out-waits the queue deadline gets an honest 504
    /// instead of a late answer.
    #[test]
    fn queue_deadline_expiry_answers_504() {
        let server = start_tiny_server(Some(Duration::from_millis(50)));
        let addr = server.addr();
        let held = hold_worker(addr);

        // This connection sits in the queue while the worker is held...
        let mut queued = TcpStream::connect(addr).unwrap();
        queued
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        queued
            .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();

        // ...long past the 50ms deadline.
        std::thread::sleep(Duration::from_millis(400));
        drop(held);

        let mut out = String::new();
        queued.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 504"), "reply: {out}");
        assert!(out.contains("admission queue"), "reply: {out}");
        assert!(out.contains("retry-after: 1"), "reply: {out}");
        // Close our half so the worker's bounded post-504 drain returns
        // immediately instead of holding the pool until its timeout.
        drop(queued);

        // The pool recovers: fresh requests are served normally.
        let reply = request(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_quickly() {
        let server = start_test_server();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
