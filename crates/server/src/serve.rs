//! The threaded server: an acceptor feeding a fixed worker pool over a
//! crossbeam channel, with graceful shutdown.

use crate::api::{handle, AppState};
use crate::http::{HttpError, Response};
use chatiyp_core::ChatIyp;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Use port 0 to let the OS choose (tests do).
    pub addr: SocketAddr,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8047".parse().expect("valid literal addr"),
            workers: 4,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// the acceptor and drains the workers.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and spawns the acceptor + worker pool with a ready pipeline.
    /// Workers share one [`AppState`]; every request resolves the current
    /// graph snapshot through it.
    pub fn start(chat: ChatIyp, config: ServerConfig) -> std::io::Result<Server> {
        Self::start_with_state(Arc::new(AppState::ready(Arc::new(chat))), config)
    }

    /// Binds and starts serving **before** the pipeline exists: the
    /// socket accepts immediately, every endpoint answers 503 +
    /// `Retry-After`, and `builder` runs on a background thread. Once it
    /// returns, its pipeline is published and `GET /healthz` flips to
    /// 200 — the load-balancer-friendly way to boot a server whose
    /// dataset takes a while to generate or load from disk.
    pub fn start_deferred<F>(config: ServerConfig, builder: F) -> std::io::Result<Server>
    where
        F: FnOnce() -> ChatIyp + Send + 'static,
    {
        let state = Arc::new(AppState::deferred());
        let publisher = Arc::clone(&state);
        std::thread::Builder::new()
            .name("chatiyp-loader".into())
            .spawn(move || {
                publisher.publish(Arc::new(builder()));
            })
            .expect("spawn loader");
        Self::start_with_state(state, config)
    }

    fn start_with_state(state: Arc<AppState>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(128);
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let state = Arc::clone(&state);
            let read_timeout = config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("chatiyp-worker-{i}"))
                    .spawn(move || worker_loop(rx, state, read_timeout))
                    .expect("spawn worker"),
            );
        }

        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("chatiyp-acceptor".into())
            .spawn(move || {
                while !stop_accept.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // If the queue is full the connection waits here;
                            // backpressure instead of unbounded memory.
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                // Dropping tx closes the channel; workers drain and exit.
            })
            .expect("spawn acceptor");

        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn worker_loop(rx: Receiver<TcpStream>, state: Arc<AppState>, read_timeout: Duration) {
    // The loop ends when the acceptor drops the sender.
    while let Ok(stream) = rx.recv() {
        let _ = stream.set_read_timeout(Some(read_timeout));
        serve_connection(stream, &state);
    }
}

/// Serves one connection: keep-alive loop with a per-connection buffered
/// reader (so pipelined request bytes survive between reads), bounded by
/// [`crate::http::MAX_REQUESTS_PER_CONN`].
fn serve_connection(stream: TcpStream, state: &AppState) {
    use crate::http::{read_request_buffered, MAX_REQUESTS_PER_CONN};
    let mut reader = std::io::BufReader::new(stream);
    for served in 0..MAX_REQUESTS_PER_CONN {
        let parsed = read_request_buffered(&mut reader);
        let (response, keep_alive) = match parsed {
            Ok(req) => {
                let keep = req.wants_keep_alive() && served + 1 < MAX_REQUESTS_PER_CONN;
                (handle(state, &req), keep)
            }
            Err(HttpError::TooLarge) => (
                Response::json(413, r#"{"error":"body too large"}"#.as_bytes().to_vec()),
                false,
            ),
            Err(HttpError::BadRequest(m)) => (
                Response::json(
                    400,
                    serde_json::json!({ "error": m }).to_string().into_bytes(),
                ),
                false,
            ),
            // End of a keep-alive session: close quietly, no 400 into a
            // socket the peer already abandoned.
            Err(HttpError::Closed) => return,
            Err(HttpError::Truncated(m)) => (
                Response::json(
                    400,
                    serde_json::json!({ "error": format!("truncated request: {m}") })
                        .to_string()
                        .into_bytes(),
                ),
                false,
            ),
            Err(HttpError::Io(_)) => return, // peer went away / idle timeout
        };
        if response.write_conn(reader.get_mut(), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatiyp_core::ChatIypConfig;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;
    use std::io::{Read, Write};

    fn start_test_server() -> Server {
        let chat = ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
        );
        Server::start(
            chat,
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                workers: 2,
                read_timeout: Duration::from_secs(2),
            },
        )
        .expect("server starts")
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        // `Connection: close` so read_to_string terminates promptly.
        let raw = raw.replacen("\r\n", "\r\nConnection: close\r\n", 1);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn end_to_end_ask_over_tcp() {
        let server = start_test_server();
        let body = r#"{"question":"What is the name of AS2497?"}"#;
        let raw = format!(
            "POST /ask HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let reply = request(server.addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
        assert!(reply.contains("IIJ"), "reply: {reply}");
        server.shutdown();
    }

    #[test]
    fn health_over_tcp_and_concurrent_clients() {
        let server = start_test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || request(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n"))
            })
            .collect();
        for h in handles {
            let reply = h.join().unwrap();
            assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_not_hang() {
        let server = start_test_server();
        let reply = request(server.addr(), "GARBAGE\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "reply: {reply}");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use std::io::{BufRead, BufReader};
        let server = start_test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let mut reader = BufReader::new(stream);

        for i in 0..3 {
            reader
                .get_mut()
                .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Status line.
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "req {i}: {line}");
            // Headers until blank; find content-length and keep-alive.
            let mut content_length = 0usize;
            let mut connection = String::new();
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                let h = h.trim_end();
                if h.is_empty() {
                    break;
                }
                if let Some(v) = h.strip_prefix("content-length: ") {
                    content_length = v.parse().unwrap();
                }
                if let Some(v) = h.strip_prefix("connection: ") {
                    connection = v.to_string();
                }
            }
            assert_eq!(connection, "keep-alive", "req {i}");
            let mut body = vec![0u8; content_length];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(String::from_utf8_lossy(&body).contains("\"status\":\"ok\""));
        }
        server.shutdown();
    }

    #[test]
    fn clean_keep_alive_close_gets_no_spurious_400() {
        use std::io::BufReader;
        use std::net::Shutdown;
        let server = start_test_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        reader
            .get_mut()
            .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        // Read the one keep-alive response fully.
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 200"), "{line}");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            std::io::BufRead::read_line(&mut reader, &mut h).unwrap();
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.strip_prefix("content-length: ") {
                content_length = v.parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(&mut reader, &mut body).unwrap();
        // Now end the session cleanly. Previously the server answered the
        // EOF with a 400; it must close with no further bytes.
        reader.get_mut().shutdown(Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "server wrote after clean close: {}",
            String::from_utf8_lossy(&rest)
        );
        server.shutdown();
    }

    #[test]
    fn truncated_request_gets_400() {
        use std::net::Shutdown;
        let server = start_test_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        // EOF mid-headers: previously parsed as a complete request.
        s.write_all(b"POST /ask HTTP/1.1\r\nHost: t\r\n").unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "reply: {out}");
        assert!(out.contains("truncated"), "reply: {out}");
        server.shutdown();
    }

    #[test]
    fn http10_defaults_to_close() {
        let server = start_test_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /health HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap(); // returns promptly: server closes
        assert!(out.contains("connection: close"), "{out}");
        server.shutdown();
    }

    #[test]
    fn worker_survives_client_disconnecting_mid_request() {
        let server = start_test_server();
        // Client declares a body it never sends, then vanishes: the read
        // times out / errors and the worker moves on.
        for _ in 0..3 {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(b"POST /ask HTTP/1.1\r\nContent-Length: 500\r\n\r\n{half")
                .unwrap();
            drop(s); // disconnect mid-body
        }
        // The pool must still serve real requests afterwards.
        let reply = request(server.addr(), "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        server.shutdown();
    }

    /// A deferred server accepts connections immediately, answers 503 +
    /// Retry-After while the pipeline builds, and flips `/healthz` to
    /// 200 once the loader publishes — without dropping a single
    /// connection along the way.
    #[test]
    fn deferred_start_serves_503_then_flips_ready() {
        use std::sync::mpsc;
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let server = Server::start_deferred(
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                workers: 2,
                read_timeout: Duration::from_secs(2),
            },
            move || {
                // Hold the pipeline back until the test has observed 503.
                release_rx.recv().ok();
                ChatIyp::new(
                    generate(&IypConfig::tiny()),
                    ChatIypConfig {
                        lm: LmConfig {
                            seed: 42,
                            skill: 1.0,
                            variety: 0.0,
                        },
                        ..Default::default()
                    },
                )
            },
        )
        .expect("server starts");

        let probe = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
        let reply = request(server.addr(), probe);
        assert!(reply.starts_with("HTTP/1.1 503"), "reply: {reply}");
        assert!(reply.contains("retry-after: 1"), "reply: {reply}");
        // Non-probe endpoints refuse too, rather than hanging.
        let reply = request(server.addr(), "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 503"), "reply: {reply}");

        release_tx.send(()).unwrap();
        // Poll until ready (the loader thread needs a moment).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let reply = request(server.addr(), probe);
            if reply.starts_with("HTTP/1.1 200") {
                assert!(reply.contains("\"status\":\"ready\""), "reply: {reply}");
                assert!(reply.contains("\"graph_version\":1"), "reply: {reply}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never became ready; last reply: {reply}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // And the full API works after readiness.
        let reply = request(server.addr(), "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
        server.shutdown();
    }

    /// Live ingest over HTTP: POST /admin/ingest swaps in a new version
    /// while /cypher readers keep answering; afterwards reads see the
    /// grown graph.
    #[test]
    fn ingest_over_tcp_swaps_versions() {
        let server = start_test_server();
        let count_raw = || {
            let body = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
            format!(
                "POST /cypher HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        };
        let before = request(server.addr(), &count_raw());
        assert!(before.starts_with("HTTP/1.1 200"), "{before}");

        let mut batch = iyp_graphdb::DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64999i64));
        let body = serde_json::to_string(&batch).unwrap();
        let raw = format!(
            "POST /admin/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let reply = request(server.addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
        assert!(reply.contains("\"old_version\":1"), "reply: {reply}");
        assert!(reply.contains("\"new_version\":2"), "reply: {reply}");

        let after = request(server.addr(), &count_raw());
        let count_of = |resp: &str| -> i64 {
            let json = resp.split("\r\n\r\n").nth(1).unwrap();
            let v: serde_json::Value = serde_json::from_str(json).unwrap();
            v["rows"][0][0].as_i64().unwrap()
        };
        assert_eq!(count_of(&after), count_of(&before) + 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_quickly() {
        let server = start_test_server();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
