//! # chatiyp-server
//!
//! A small threaded HTTP/1.1 JSON API over `std::net` exposing the
//! ChatIYP pipeline — the stand-in for the paper's public web application.
//!
//! Architecture: one non-blocking acceptor thread feeds accepted
//! connections into a bounded crossbeam channel; a fixed worker pool
//! parses one request per connection ([`http`]), dispatches it against
//! the shared pipeline ([`api`]) and writes the framed response. Dropping
//! the [`serve::Server`] handle (or calling `shutdown`) stops the
//! acceptor, drains in-flight work and joins every thread.
//!
//! ```no_run
//! use chatiyp_core::{ChatIyp, ChatIypConfig};
//! use chatiyp_server::{Server, ServerConfig};
//! use iyp_data::{generate, IypConfig};
//!
//! let chat = ChatIyp::new(generate(&IypConfig::default()), ChatIypConfig::default());
//! let server = Server::start(chat, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // ... serve until done ...
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod serve;

pub use api::{AppState, AskRequest, CypherRequest};
pub use http::{Request, Response};
pub use serve::{Server, ServerConfig};
