//! Minimal HTTP/1.1 message framing over blocking sockets.
//!
//! Only what the ChatIYP API needs: request-line + headers + fixed
//! `Content-Length` bodies, one request per connection (`Connection:
//! close`). Malformed input is answered with a 4xx rather than a panic or
//! a hang; oversized bodies are rejected early.

use bytes::BytesMut;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Maximum requests served over one keep-alive connection.
pub const MAX_REQUESTS_PER_CONN: usize = 100;

/// Maximum accepted request body (1 MiB): questions are short.
pub const MAX_BODY: usize = 1 << 20;

/// Maximum header section size.
pub const MAX_HEADER: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query string).
    pub target: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// True for HTTP/1.1 requests (keep-alive by default).
    pub http11: bool,
}

impl Request {
    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// A query-string parameter's value (`?trace=1` → `query_param("trace")
    /// == Some("1")`). A bare key with no `=` yields `Some("")`. No
    /// percent-decoding — the API's flags are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// A header value, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Does the client want the connection kept open? HTTP/1.1 defaults
    /// to keep-alive unless `Connection: close`; HTTP/1.0 requires an
    /// explicit `Connection: keep-alive`.
    ///
    /// The header value is a comma-separated option list (RFC 7230
    /// §6.1) — `Connection: keep-alive, upgrade` must still parse as
    /// keep-alive — so each token is matched individually, with `close`
    /// winning over `keep-alive` if both somehow appear.
    pub fn wants_keep_alive(&self) -> bool {
        let Some(value) = self.header("connection") else {
            return self.http11;
        };
        let mut keep_alive = false;
        for token in value.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                return false;
            }
            if token.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
        keep_alive || self.http11
    }
}

/// Request-parsing errors, each mapping to a distinct connection outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    BadRequest(String),
    /// The peer closed the connection cleanly before sending any byte of
    /// a request — the normal end of a keep-alive session. Not an error
    /// to answer: the server just closes its side.
    Closed,
    /// The peer closed the connection mid-request (EOF inside the
    /// request line, headers, or declared body) → 400. Distinct from
    /// [`HttpError::BadRequest`] so truncation is never mistaken for a
    /// complete-but-malformed message, and from [`HttpError::Closed`] so
    /// a half-request is never silently accepted.
    Truncated(String),
    /// Body larger than [`MAX_BODY`] → 413.
    TooLarge,
    /// Socket-level failure (peer vanished, read timeout, …).
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::Closed => write!(f, "connection closed before a request"),
            HttpError::Truncated(m) => write!(f, "truncated request: {m}"),
            HttpError::TooLarge => write!(f, "request body too large"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}
impl std::error::Error for HttpError {}

/// Reads one request from a stream (convenience wrapper; keep-alive
/// serving uses [`read_request_buffered`] with a per-connection reader).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    read_request_buffered(&mut reader)
}

/// Reads one request from a per-connection buffered reader, so bytes of a
/// pipelined next request are not dropped between calls.
pub fn read_request_buffered<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        // EOF before any byte: the peer ended a keep-alive session.
        return Err(HttpError::Closed);
    }
    if !line.ends_with('\n') {
        return Err(HttpError::Truncated("EOF in request line".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let http11 = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut hline = String::new();
        let n = reader
            .read_line(&mut hline)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        // EOF before the blank line is a half-request, not an implicit
        // end-of-headers: treating it as complete would accept truncated
        // messages (and mis-frame any declared body).
        if n == 0 || !hline.ends_with('\n') {
            return Err(HttpError::Truncated("EOF in header section".into()));
        }
        header_bytes += hline.len();
        if header_bytes > MAX_HEADER {
            return Err(HttpError::BadRequest("header section too large".into()));
        }
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        match trimmed.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => {
                return Err(HttpError::BadRequest(format!(
                    "malformed header '{trimmed}'"
                )))
            }
        }
    }

    // RFC 7230 §3.3.2: multiple Content-Length headers with differing
    // values make the message length ambiguous (request-smuggling class)
    // and must be rejected; identical duplicates may be collapsed.
    let mut content_length = 0usize;
    let mut seen_length: Option<&str> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        if let Some(prev) = seen_length {
            if prev != v {
                return Err(HttpError::BadRequest(
                    "conflicting content-length headers".into(),
                ));
            }
            continue;
        }
        content_length = v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("unparseable content-length".into()))?;
        seen_length = Some(v);
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::Truncated("EOF in request body".into())
        } else {
            HttpError::Io(e.to_string())
        }
    })?;
    Ok(Request {
        method,
        target,
        headers,
        body,
        http11,
    })
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra response headers (already-valid `name: value` pairs), e.g.
    /// `Retry-After` on a 503 while the snapshot is still loading.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serializes the response to wire format with `Connection: close`.
    pub fn to_bytes(&self) -> BytesMut {
        self.to_bytes_conn(false)
    }

    /// Serializes the response, choosing the connection disposition.
    pub fn to_bytes_conn(&self, keep_alive: bool) -> BytesMut {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = BytesMut::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {reason}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
                self.status,
                self.content_type,
                self.body.len()
            )
            .as_bytes(),
        );
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Writes the response to a stream with `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        self.write_conn(stream, false)
    }

    /// Writes the response, choosing the connection disposition.
    pub fn write_conn(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes_conn(keep_alive))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        let _ = client.join().unwrap();
        req
    }

    /// Like [`roundtrip`], but the client drops its socket after writing
    /// so the server observes EOF at the end of `raw` — needed for the
    /// clean-close and truncation regressions ([`roundtrip`] keeps the
    /// client side open, so a short read would block instead).
    fn roundtrip_eof(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Dropping `s` here closes the write side before the server
            // finishes reading.
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /ask HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"question\":1}x",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/ask");
        assert_eq!(req.body.len(), 15);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /health?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/health");
        assert_eq!(req.target, "/health?verbose=1");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /ask HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn rejects_bad_protocol() {
        assert!(matches!(
            roundtrip(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_close_before_any_byte_is_closed_not_bad_request() {
        // End of a keep-alive session: previously surfaced as an "empty
        // request line" BadRequest, which the serve loop answered with a
        // spurious 400 into a closed socket.
        assert!(matches!(roundtrip_eof(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn eof_in_request_line_is_truncated() {
        assert!(matches!(
            roundtrip_eof(b"GET /health"),
            Err(HttpError::Truncated(_))
        ));
    }

    #[test]
    fn eof_mid_headers_is_truncated_not_accepted() {
        // The key regression: EOF before the blank line used to read as
        // end-of-headers, silently accepting the half-request.
        assert!(matches!(
            roundtrip_eof(b"POST /ask HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Truncated(_))
        ));
    }

    #[test]
    fn eof_mid_body_is_truncated() {
        assert!(matches!(
            roundtrip_eof(b"POST /ask HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated(_))
        ));
    }

    #[test]
    fn complete_request_still_parses_through_eof_helper() {
        let req = roundtrip_eof(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/health");
    }

    #[test]
    fn conflicting_content_length_headers_rejected() {
        let err =
            roundtrip(b"POST /ask HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!")
                .unwrap_err();
        assert!(
            matches!(&err, HttpError::BadRequest(m) if m.contains("conflicting")),
            "{err:?}"
        );
    }

    #[test]
    fn identical_duplicate_content_length_headers_accepted() {
        let req =
            roundtrip(b"POST /ask HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn keep_alive_parses_connection_token_lists() {
        let req = |http11: bool, conn: Option<&str>| Request {
            method: "GET".into(),
            target: "/".into(),
            headers: conn
                .map(|v| vec![("connection".to_string(), v.to_string())])
                .unwrap_or_default(),
            body: Vec::new(),
            http11,
        };
        // HTTP/1.0 + multi-token list containing keep-alive.
        assert!(req(false, Some("keep-alive, upgrade")).wants_keep_alive());
        // close anywhere in the list wins, case-insensitively.
        assert!(!req(true, Some("Upgrade, Close")).wants_keep_alive());
        assert!(!req(true, Some("close")).wants_keep_alive());
        // Defaults: 1.1 keep-alive, 1.0 close.
        assert!(req(true, None).wants_keep_alive());
        assert!(!req(false, None).wants_keep_alive());
        // Unrelated tokens fall back to the version default.
        assert!(req(true, Some("upgrade")).wants_keep_alive());
        assert!(!req(false, Some("upgrade")).wants_keep_alive());
    }

    #[test]
    fn extra_headers_sit_before_the_blank_line() {
        let bytes = Response::text(503, "loading")
            .with_header("retry-after", "1")
            .to_bytes();
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let (head, body) = s.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("retry-after: 1"));
        assert_eq!(body, "loading");
    }

    #[test]
    fn response_wire_format() {
        let bytes = Response::json(200, br#"{"ok":true}"#.to_vec()).to_bytes();
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("content-length: 11"));
        assert!(s.contains("application/json"));
        assert!(s.ends_with(r#"{"ok":true}"#));
    }
}
