//! The ChatIYP JSON API: request/response types and the route handlers.
//!
//! Endpoints:
//! * `POST /ask` — `{"question": "..."}` → full pipeline response
//! * `GET  /health` — liveness + graph size
//! * `GET  /schema` — the IYP schema summary
//! * `POST /cypher` — `{"query": "..."}` → direct read-only Cypher
//!   (the expert escape hatch)

use crate::http::{Request, Response};
use chatiyp_core::ChatIyp;
use iyp_graphdb::Graph;
use serde::{Deserialize, Serialize};
use serde_json::json;

/// Body of `POST /ask`.
#[derive(Debug, Deserialize)]
pub struct AskRequest {
    /// The natural-language question.
    pub question: String,
}

/// Body of `POST /cypher`.
#[derive(Debug, Deserialize)]
pub struct CypherRequest {
    /// A read-only Cypher query.
    pub query: String,
}

/// Serialized answer of `POST /ask`.
#[derive(Debug, Serialize)]
pub struct AskResponse<'a> {
    /// The generated answer text.
    pub answer: &'a str,
    /// The generated Cypher (transparency), if any.
    pub cypher: Option<&'a str>,
    /// The route that answered (`cypher`, `vector-fallback`, `failed`).
    pub route: String,
    /// Retrieved context titles (vector route).
    pub contexts: Vec<&'a str>,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
}

/// Dispatches one request. Graph-only endpoints (`/cypher`, `/health`,
/// `/stats`) read from the shared `graph` handle — the same allocation
/// the pipeline queries — so they never touch pipeline state.
pub fn handle(chat: &ChatIyp, graph: &Graph, req: &Request) -> Response {
    match (req.method.as_str(), req.path()) {
        ("POST", "/ask") => handle_ask(chat, req),
        ("POST", "/cypher") => handle_cypher(chat, graph, req),
        ("GET", "/health") => handle_health(graph),
        ("GET", "/stats") => handle_stats(chat, graph),
        ("GET", "/schema") => Response::text(200, iyp_data::schema::schema_summary()),
        ("GET", _) | ("POST", _) => Response::json(
            404,
            json!({"error": "unknown endpoint", "endpoints": ["/ask", "/cypher", "/health", "/schema", "/stats"]})
                .to_string(),
        ),
        (method, _) => Response::json(
            405,
            json!({"error": format!("method {method} not allowed")}).to_string(),
        ),
    }
}

fn handle_ask(chat: &ChatIyp, req: &Request) -> Response {
    let parsed: Result<AskRequest, _> = serde_json::from_slice(&req.body);
    match parsed {
        Err(e) => Response::json(
            400,
            json!({"error": format!("invalid JSON body: {e}")}).to_string(),
        ),
        Ok(ask) if ask.question.trim().is_empty() => Response::json(
            400,
            json!({"error": "question must not be empty"}).to_string(),
        ),
        Ok(ask) => {
            let r = chat.ask(&ask.question);
            let body = AskResponse {
                answer: &r.answer,
                cypher: r.cypher.as_deref(),
                route: r.route.to_string(),
                contexts: r.contexts.iter().map(|c| c.title.as_str()).collect(),
                latency_us: r.timings.total.as_micros() as u64,
            };
            Response::json(200, serde_json::to_string(&body).expect("serializes"))
        }
    }
}

fn handle_cypher(chat: &ChatIyp, graph: &Graph, req: &Request) -> Response {
    let parsed: Result<CypherRequest, _> = serde_json::from_slice(&req.body);
    match parsed {
        Err(e) => Response::json(
            400,
            json!({"error": format!("invalid JSON body: {e}")}).to_string(),
        ),
        // Untrusted Cypher runs through the shared query cache (repeated
        // queries skip parse + execution) and under a deadline so a
        // pathological pattern cannot pin a worker.
        Ok(c) => match chat.query_cache().get_or_execute_with_deadline(
            graph,
            &c.query,
            &iyp_cypher::Params::new(),
            std::time::Duration::from_secs(2),
        ) {
            Ok(result) => Response::json(
                200,
                serde_json::to_string(&*result).expect("result serializes"),
            ),
            Err(e) => Response::json(400, json!({"error": e.to_string()}).to_string()),
        },
    }
}

fn handle_stats(chat: &ChatIyp, graph: &Graph) -> Response {
    let stats = iyp_graphdb::GraphStats::compute(graph);
    let mut body = serde_json::to_value(&stats);
    // Graft the cache counters and the graph's write epoch onto the
    // GraphStats object so operators see hit rates next to graph shape.
    if let serde_json::Value::Map(entries) = &mut body {
        entries.push(("epoch".to_string(), serde_json::to_value(&graph.epoch())));
        entries.push((
            "cache".to_string(),
            serde_json::to_value(&chat.query_cache().stats()),
        ));
    }
    Response::json(200, body.to_string())
}

fn handle_health(graph: &Graph) -> Response {
    Response::json(
        200,
        json!({
            "status": "ok",
            "nodes": graph.node_count(),
            "relationships": graph.rel_count(),
        })
        .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatiyp_core::ChatIypConfig;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;

    fn chat() -> ChatIyp {
        ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
        )
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            target: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            http11: true,
        }
    }

    #[test]
    fn ask_endpoint_answers() {
        let c = chat();
        let r = handle(
            &c,
            c.graph(),
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["answer"].as_str().unwrap().contains("IIJ"));
        assert_eq!(body["route"], "cypher");
        assert!(body["cypher"].as_str().unwrap().contains("2497"));
    }

    #[test]
    fn ask_rejects_bad_json_and_empty_question() {
        let c = chat();
        assert_eq!(
            handle(&c, c.graph(), &req("POST", "/ask", "not json")).status,
            400
        );
        assert_eq!(
            handle(&c, c.graph(), &req("POST", "/ask", r#"{"question":"  "}"#)).status,
            400
        );
    }

    #[test]
    fn cypher_endpoint_runs_readonly_queries() {
        let c = chat();
        let r = handle(
            &c,
            c.graph(),
            &req(
                "POST",
                "/cypher",
                r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["rows"][0][0].as_i64().unwrap() > 0);
        // Write queries are refused.
        let r = handle(
            &c,
            c.graph(),
            &req("POST", "/cypher", r#"{"query":"CREATE (x:AS {asn: 1})"}"#),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn health_and_schema() {
        let c = chat();
        let r = handle(&c, c.graph(), &req("GET", "/health", ""));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["status"], "ok");
        assert!(body["nodes"].as_u64().unwrap() > 0);

        let r = handle(&c, c.graph(), &req("GET", "/schema", ""));
        assert_eq!(r.status, 200);
        assert!(String::from_utf8_lossy(&r.body).contains("ORIGINATE"));
    }

    #[test]
    fn stats_endpoint_reports_graph_shape() {
        let c = chat();
        let r = handle(&c, c.graph(), &req("GET", "/stats", ""));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["nodes"].as_u64().unwrap() > 0);
        assert!(body["nodes_by_label"]["AS"].as_u64().unwrap() > 0);
        assert!(body["rels_by_type"]["ORIGINATE"].as_u64().unwrap() > 0);
        assert!(body["degree"]["mean"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn stats_endpoint_exposes_cache_counters_and_epoch() {
        let c = chat();
        let r = handle(&c, c.graph(), &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        // Existing graph-shape keys survive the merge.
        assert!(body["nodes"].as_u64().unwrap() > 0);
        assert!(body["epoch"].as_u64().is_some());
        assert_eq!(body["cache"]["hits"].as_u64(), Some(0));
        assert_eq!(body["cache"]["misses"].as_u64(), Some(0));

        // Two identical /cypher calls: the second is a hit, visible in /stats.
        let q = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
        assert_eq!(
            handle(&c, c.graph(), &req("POST", "/cypher", q)).status,
            200
        );
        assert_eq!(
            handle(&c, c.graph(), &req("POST", "/cypher", q)).status,
            200
        );
        let r = handle(&c, c.graph(), &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["cache"]["misses"].as_u64(), Some(1));
        assert_eq!(body["cache"]["hits"].as_u64(), Some(1));
        assert_eq!(body["cache"]["len"].as_u64(), Some(1));
    }

    #[test]
    fn cypher_responses_identical_across_cache_hit() {
        let c = chat();
        let q = r#"{"query":"MATCH (a:AS) RETURN a.asn ORDER BY a.asn"}"#;
        let cold = handle(&c, c.graph(), &req("POST", "/cypher", q));
        let warm = handle(&c, c.graph(), &req("POST", "/cypher", q));
        assert_eq!(cold.status, 200);
        assert_eq!(cold.body, warm.body, "cache hit changed the wire bytes");
    }

    #[test]
    fn unknown_paths_and_methods() {
        let c = chat();
        assert_eq!(handle(&c, c.graph(), &req("GET", "/nope", "")).status, 404);
        assert_eq!(
            handle(&c, c.graph(), &req("DELETE", "/ask", "")).status,
            405
        );
    }
}
