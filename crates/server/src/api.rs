//! The ChatIYP JSON API: request/response types and the route handlers.
//!
//! Endpoints:
//! * `POST /ask` — `{"question": "..."}` → full pipeline response;
//!   `?trace=1` adds the request's span tree to the response
//! * `GET  /health` — liveness + graph size
//! * `GET  /healthz` — readiness: 200 once a snapshot is published,
//!   503 + `Retry-After` while the initial dataset is still loading
//! * `GET  /schema` — the IYP schema summary
//! * `POST /cypher` — `{"query": "..."}` → direct read-only Cypher
//!   (the expert escape hatch); `PROFILE`/`EXPLAIN` query prefixes
//!   return per-operator statistics / the plan instead of plain rows
//! * `POST /admin/ingest` — a `DeltaBatch` in JSON → applies it and
//!   swaps in the next `(snapshot, retrieval index)` pair, reporting
//!   old/new version, the published `index_version`, the new graph's
//!   node/edge counts, and the apply/derive/swap timings. With a data
//!   directory configured the batch is WAL-appended before the publish;
//!   a WAL failure answers 503 + `Retry-After` (nothing published),
//!   while an invalid batch stays a 400
//! * `POST /admin/checkpoint` — saves the current snapshot atomically
//!   and truncates WAL segments it covers; 400 without `--data-dir`
//! * `GET  /stats` — graph shape + live snapshot version + paired
//!   retrieval-index version + cache counters + a `durability` block
//!   (`null` unless serving with a data directory) (JSON)
//! * `GET  /metrics` — Prometheus text exposition (stage + HTTP
//!   histograms, cache counters, graph + index gauges, WAL/recovery
//!   series when durability is configured)
//!
//! Every request resolves the pipeline's current
//! `(GraphSnapshot, RetrievalIndex)` pair **once** in [`handle`] (via
//! [`ChatIyp::resolve`]) and serves entirely from it, so a concurrent
//! ingest can never tear a response — the graph version and the
//! retrieval-index version a request reports always match.

use crate::http::{Request, Response};
use chatiyp_core::{ChatIyp, CypherExecError, IngestError, RetrievalHandle};
use iyp_graphdb::{DeltaBatch, GraphSnapshot};
use iyp_obs::TraceTree;
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Shared server state: the pipeline, published once ready.
///
/// The server can start accepting connections before the dataset is
/// generated/loaded ([`AppState::deferred`] + [`AppState::publish`]);
/// until then every endpoint answers 503 with a `Retry-After`, and
/// `GET /healthz` is the probe that flips to 200 on readiness.
pub struct AppState {
    chat: OnceLock<Arc<ChatIyp>>,
    /// Connections refused with `429` because the admission queue was
    /// full. Lives here (not in the pipeline's registry) because sheds
    /// can happen before any pipeline is published.
    shed: AtomicU64,
}

impl AppState {
    /// A state that is ready from the start.
    pub fn ready(chat: Arc<ChatIyp>) -> Self {
        let state = AppState::deferred();
        state.publish(chat);
        state
    }

    /// A state with no pipeline yet; serve 503s until [`publish`].
    ///
    /// [`publish`]: AppState::publish
    pub fn deferred() -> Self {
        AppState {
            chat: OnceLock::new(),
            shed: AtomicU64::new(0),
        }
    }

    /// Publishes the pipeline, flipping readiness. Returns false when a
    /// pipeline was already published (the first one wins).
    pub fn publish(&self, chat: Arc<ChatIyp>) -> bool {
        self.chat.set(chat).is_ok()
    }

    /// The pipeline, once published.
    pub fn chat(&self) -> Option<&Arc<ChatIyp>> {
        self.chat.get()
    }

    /// Counts one shed connection (admission queue full → `429`).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// How many connections have been shed since startup.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// Histogram family for HTTP request latencies (`path` label).
pub const HTTP_METRIC: &str = "chatiyp_http_request_seconds";

/// Counter family for served requests (`path` + `status` labels).
pub const HTTP_REQUESTS_METRIC: &str = "chatiyp_http_requests_total";

/// Body of `POST /ask`.
#[derive(Debug, Deserialize)]
pub struct AskRequest {
    /// The natural-language question.
    pub question: String,
}

/// Body of `POST /cypher`.
#[derive(Debug, Deserialize)]
pub struct CypherRequest {
    /// A read-only Cypher query.
    pub query: String,
}

/// Serialized answer of `POST /ask`.
#[derive(Debug, Serialize)]
pub struct AskResponse<'a> {
    /// The generated answer text.
    pub answer: &'a str,
    /// The generated Cypher (transparency), if any.
    pub cypher: Option<&'a str>,
    /// The route that answered (`cypher`, `vector-fallback`, `failed`).
    pub route: String,
    /// Retrieved context titles (vector route).
    pub contexts: Vec<&'a str>,
    /// Why the response is degraded (stable marker such as
    /// `"text2cypher-unavailable"`), or `null` for full service.
    pub degraded: Option<&'a str>,
    /// End-to-end latency in microseconds.
    pub latency_us: u64,
}

/// Handles one request: resolves readiness and the current graph
/// snapshot, dispatches to the route handler, then records the request
/// into the pipeline's metric registry (latency histogram per path,
/// request counter per path + status) so `GET /metrics` sees HTTP
/// traffic alongside the pipeline stages. Before the pipeline is
/// published, every endpoint answers 503 + `Retry-After` (and nothing
/// is recorded — there is no registry yet).
pub fn handle(state: &AppState, req: &Request) -> Response {
    let Some(chat) = state.chat() else {
        return not_ready();
    };
    let t0 = Instant::now();
    // One paired resolve per request: every read below sees one
    // (graph, retrieval index) pair, even while `/admin/ingest`
    // publishes the next one concurrently.
    let handle = chat.resolve();
    let resp = dispatch(state, chat, &handle, req);
    let path = metric_path(req.path());
    let registry = chat.registry();
    registry.observe(HTTP_METRIC, &[("path", path)], t0.elapsed());
    registry.inc(
        HTTP_REQUESTS_METRIC,
        &[("path", path), ("status", status_label(resp.status))],
        1,
    );
    resp
}

/// The 503 every route serves while the initial snapshot is loading.
/// `Retry-After: 1` keeps well-behaved probes cheap.
fn not_ready() -> Response {
    Response::json(
        503,
        json!({"status": "loading", "error": "snapshot not yet published"}).to_string(),
    )
    .with_header("retry-after", "1")
}

/// Dispatches one request. Graph-reading endpoints (`/cypher`,
/// `/health`, `/stats`) serve from the request's resolved handle — the
/// same immutable graph + retrieval index the pipeline queries — so
/// they never see a half-applied ingest or a torn pair.
fn dispatch(state: &AppState, chat: &ChatIyp, handle: &RetrievalHandle, req: &Request) -> Response {
    let snap = &handle.snapshot;
    match (req.method.as_str(), req.path()) {
        ("POST", "/ask") => handle_ask(chat, req),
        ("POST", "/cypher") => handle_cypher(chat, snap, req),
        ("POST", "/admin/ingest") => handle_ingest(chat, req),
        ("POST", "/admin/checkpoint") => handle_checkpoint(chat),
        ("GET", "/health") => handle_health(snap),
        ("GET", "/healthz") => handle_healthz(snap),
        ("GET", "/stats") => handle_stats(state, chat, handle),
        ("GET", "/metrics") => handle_metrics(state, chat, handle),
        ("GET", "/schema") => Response::text(200, iyp_data::schema::schema_summary()),
        ("GET", _) | ("POST", _) => Response::json(
            404,
            json!({"error": "unknown endpoint", "endpoints": ["/admin/checkpoint", "/admin/ingest", "/ask", "/cypher", "/health", "/healthz", "/metrics", "/schema", "/stats"]})
                .to_string(),
        ),
        (method, _) => Response::json(
            405,
            json!({"error": format!("method {method} not allowed")}).to_string(),
        ),
    }
}

/// Maps a request path to a bounded metric label: known endpoints keep
/// their path, everything else collapses to `"other"` so arbitrary
/// request targets cannot grow the label set.
fn metric_path(path: &str) -> &'static str {
    match path {
        "/admin/checkpoint" => "/admin/checkpoint",
        "/admin/ingest" => "/admin/ingest",
        "/ask" => "/ask",
        "/cypher" => "/cypher",
        "/health" => "/health",
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/schema" => "/schema",
        "/stats" => "/stats",
        _ => "other",
    }
}

/// The status codes the API emits, as static label values.
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        413 => "413",
        429 => "429",
        500 => "500",
        503 => "503",
        504 => "504",
        _ => "other",
    }
}

/// Is the `trace` query parameter asking for a trace? Presence counts
/// (`?trace`), and any value other than `0`/`false` enables it.
fn wants_trace(req: &Request) -> bool {
    matches!(req.query_param("trace"),
        Some(v) if v != "0" && !v.eq_ignore_ascii_case("false"))
}

/// Serializes a span tree for the `?trace=1` response: span ids, parent
/// links, microsecond offsets/durations, and the key/value fields.
fn trace_json(tree: &TraceTree) -> serde_json::Value {
    let spans: Vec<serde_json::Value> = tree
        .spans
        .iter()
        .map(|s| {
            let fields: Vec<(String, serde_json::Value)> = s
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), serde_json::to_value(v)))
                .collect();
            serde_json::Value::Map(vec![
                ("id".to_string(), serde_json::to_value(&(s.id.0 as u64))),
                (
                    "parent".to_string(),
                    match s.parent {
                        Some(p) => serde_json::to_value(&(p.0 as u64)),
                        None => serde_json::Value::Null,
                    },
                ),
                ("name".to_string(), serde_json::to_value(&s.name.as_ref())),
                (
                    "start_us".to_string(),
                    serde_json::to_value(&(s.start.as_micros() as u64)),
                ),
                (
                    "elapsed_us".to_string(),
                    serde_json::to_value(&(s.elapsed.as_micros() as u64)),
                ),
                ("fields".to_string(), serde_json::Value::Map(fields)),
            ])
        })
        .collect();
    serde_json::Value::Map(vec![
        (
            "total_us".to_string(),
            serde_json::to_value(&(tree.total.as_micros() as u64)),
        ),
        ("spans".to_string(), serde_json::Value::Seq(spans)),
    ])
}

fn handle_ask(chat: &ChatIyp, req: &Request) -> Response {
    let parsed: Result<AskRequest, _> = serde_json::from_slice(&req.body);
    match parsed {
        Err(e) => Response::json(
            400,
            json!({"error": format!("invalid JSON body: {e}")}).to_string(),
        ),
        Ok(ask) if ask.question.trim().is_empty() => Response::json(
            400,
            json!({"error": "question must not be empty"}).to_string(),
        ),
        Ok(ask) => {
            let (r, tree) = chat.ask_traced(&ask.question);
            let body = AskResponse {
                answer: &r.answer,
                cypher: r.cypher.as_deref(),
                route: r.route.to_string(),
                contexts: r.contexts.iter().map(|c| c.title.as_str()).collect(),
                degraded: r.degraded,
                latency_us: r.timings.total.as_micros() as u64,
            };
            let mut value = serde_json::to_value(&body);
            if wants_trace(req) {
                if let serde_json::Value::Map(entries) = &mut value {
                    entries.push(("trace".to_string(), trace_json(&tree)));
                }
            }
            Response::json(200, value.to_string())
        }
    }
}

/// The leading statement modifier of a `/cypher` query, if any.
#[derive(PartialEq)]
enum CypherRoute {
    Plain,
    Explain,
    Profile,
}

/// Detects a leading `PROFILE` / `EXPLAIN` word (case-insensitive,
/// followed by more query text). Full token-level handling lives in the
/// parser; this only decides which executor entry point to call, so the
/// cached plain-query hot path stays untouched.
fn cypher_route(query: &str) -> CypherRoute {
    let trimmed = query.trim_start();
    let word = trimmed.split_whitespace().next().unwrap_or("");
    if word.eq_ignore_ascii_case("PROFILE") {
        CypherRoute::Profile
    } else if word.eq_ignore_ascii_case("EXPLAIN") {
        CypherRoute::Explain
    } else {
        CypherRoute::Plain
    }
}

fn handle_cypher(chat: &ChatIyp, snap: &GraphSnapshot, req: &Request) -> Response {
    let parsed: Result<CypherRequest, _> = serde_json::from_slice(&req.body);
    let c = match parsed {
        Err(e) => {
            return Response::json(
                400,
                json!({"error": format!("invalid JSON body: {e}")}).to_string(),
            )
        }
        Ok(c) => c,
    };
    match cypher_route(&c.query) {
        // `EXPLAIN <query>`: render the plan, execute nothing.
        CypherRoute::Explain => match iyp_cypher::explain(snap.graph(), &c.query) {
            Ok(plan) => Response::json(200, json!({"plan": plan}).to_string()),
            Err(e) => Response::json(400, json!({"error": e.to_string()}).to_string()),
        },
        // `PROFILE <query>`: execute with per-operator measurement.
        // Profiled runs bypass the result cache on purpose — a cached
        // result has no operator execution to measure. Parallel workers'
        // db hits are credited back to the profiled operators, so the
        // reported totals are worker-count independent.
        CypherRoute::Profile => match iyp_cypher::profile_with_limits(
            snap.graph(),
            &c.query,
            &iyp_cypher::Params::new(),
            iyp_cypher::ExecLimits::timeout(std::time::Duration::from_secs(2))
                .with_parallelism(chat.config().query_parallelism),
        ) {
            Ok((result, prof)) => {
                let mut value = serde_json::to_value(&result);
                if let serde_json::Value::Map(entries) = &mut value {
                    entries.push(("profile".to_string(), profile_json(&prof)));
                }
                Response::json(200, value.to_string())
            }
            Err(e) => Response::json(400, json!({"error": e.to_string()}).to_string()),
        },
        // Plain queries run through the shared query cache (repeated
        // queries skip parse + execution) and under a deadline so a
        // pathological pattern cannot pin a worker; cold executions use
        // the configured morsel parallelism. An injected execution-stage
        // fault answers 503 + `Retry-After` — transient unavailability,
        // not a query error — while a bad query stays a 400.
        CypherRoute::Plain => match chat.execute_cypher_with_limits(
            snap,
            &c.query,
            iyp_cypher::ExecLimits::timeout(std::time::Duration::from_secs(2))
                .with_parallelism(chat.config().query_parallelism),
        ) {
            Ok(result) => Response::json(
                200,
                serde_json::to_string(&*result).expect("result serializes"),
            ),
            Err(CypherExecError::Unavailable(e)) => Response::json(
                503,
                json!({"error": format!("execution temporarily unavailable: {e}")}).to_string(),
            )
            .with_header("retry-after", "1"),
            Err(CypherExecError::Query(e)) => {
                Response::json(400, json!({"error": e.to_string()}).to_string())
            }
        },
    }
}

/// Serializes a [`iyp_cypher::QueryProfile`] for the `PROFILE` response:
/// per-operator stats plus the rendered text (with timings — the JSON
/// numbers carry the machine-readable copy).
fn profile_json(prof: &iyp_cypher::QueryProfile) -> serde_json::Value {
    let ops: Vec<serde_json::Value> = prof
        .ops
        .iter()
        .map(|op| {
            serde_json::Value::Map(vec![
                ("name".to_string(), serde_json::to_value(&op.name)),
                ("rows".to_string(), serde_json::to_value(&op.rows)),
                ("db_hits".to_string(), serde_json::to_value(&op.db_hits)),
                (
                    "time_us".to_string(),
                    serde_json::to_value(&(op.elapsed.as_micros() as u64)),
                ),
                (
                    "plan".to_string(),
                    serde_json::to_value(&op.plan.trim_end()),
                ),
            ])
        })
        .collect();
    serde_json::Value::Map(vec![
        ("ops".to_string(), serde_json::Value::Seq(ops)),
        (
            "total_db_hits".to_string(),
            serde_json::to_value(&prof.total_db_hits()),
        ),
        (
            "total_us".to_string(),
            serde_json::to_value(&(prof.total.as_micros() as u64)),
        ),
        (
            "result_rows".to_string(),
            serde_json::to_value(&prof.result_rows),
        ),
        ("rendered".to_string(), serde_json::to_value(&prof.render())),
    ])
}

/// Renders `GET /metrics`: the registry's histogram + counter series in
/// Prometheus text format, followed by cache counters and graph gauges
/// read at scrape time (they live outside the registry, so they are
/// appended by hand — see docs/OBSERVABILITY.md).
fn handle_metrics(state: &AppState, chat: &ChatIyp, handle: &RetrievalHandle) -> Response {
    let snap = &handle.snapshot;
    let mut out = chat.registry().render_prometheus();
    let cs = chat.query_cache().stats();
    let rc = chat.resilience_stats();
    let mem = snap.graph().memory_stats();

    for (name, help, v) in [
        (
            "chatiyp_retries_total",
            "Transient-fault retries performed by the pipeline.",
            rc.retries,
        ),
        (
            "chatiyp_degraded_total",
            "Responses served with a degraded marker.",
            rc.degraded,
        ),
        (
            "chatiyp_shed_total",
            "Connections shed with 429 because the admission queue was full.",
            state.shed_count(),
        ),
    ] {
        writeln!(
            out,
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}"
        )
        .expect("write");
    }

    out.push_str("# HELP chatiyp_cache_events_total Result-tier query cache events.\n");
    out.push_str("# TYPE chatiyp_cache_events_total counter\n");
    for (kind, v) in [
        ("hits", cs.hits),
        ("misses", cs.misses),
        ("evictions", cs.evictions),
        ("invalidations", cs.invalidations),
        ("expirations", cs.expirations),
    ] {
        writeln!(out, "chatiyp_cache_events_total{{kind=\"{kind}\"}} {v}").expect("write");
    }
    out.push_str("# HELP chatiyp_plan_cache_events_total Plan-tier query cache events.\n");
    out.push_str("# TYPE chatiyp_plan_cache_events_total counter\n");
    for (kind, v) in [
        ("hits", cs.plan.hits),
        ("misses", cs.plan.misses),
        ("evictions", cs.plan.evictions),
        ("compiled", cs.plan.compiled),
    ] {
        writeln!(
            out,
            "chatiyp_plan_cache_events_total{{kind=\"{kind}\"}} {v}"
        )
        .expect("write");
    }

    for (name, help, v) in [
        (
            "chatiyp_cache_entries",
            "Live result-cache entries.",
            cs.len as u64,
        ),
        (
            "chatiyp_cache_capacity",
            "Configured result-cache capacity.",
            cs.capacity as u64,
        ),
        (
            "chatiyp_graph_nodes",
            "Nodes in the graph.",
            snap.node_count() as u64,
        ),
        (
            "chatiyp_graph_relationships",
            "Relationships in the graph.",
            snap.rel_count() as u64,
        ),
        (
            "chatiyp_graph_epoch",
            "Graph write epoch (bumps on mutation).",
            snap.epoch(),
        ),
        (
            "chatiyp_graph_version",
            "Published snapshot version (bumps on ingest/publish).",
            snap.version(),
        ),
        (
            "chatiyp_index_version",
            "Retrieval-index version paired with the snapshot (equal to chatiyp_graph_version unless a pair is mid-publish).",
            handle.index.version(),
        ),
        (
            "chatiyp_query_workers",
            "Configured morsel-parallel MATCH worker count.",
            chat.config().query_parallelism as u64,
        ),
        (
            "chatiyp_snapshot_bytes",
            "Approximate heap bytes retained by the published graph snapshot (shared pages counted once).",
            mem.retained_bytes as u64,
        ),
    ] {
        writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}").expect("write");
    }

    // Durability series exist only when the server persists (the WAL
    // append/fsync/checkpoint histograms come from the registry above;
    // these are the scrape-time counters and gauges beside them).
    if let Some(d) = chat.durability_stats() {
        writeln!(
            out,
            "# HELP chatiyp_recovery_replayed_total WAL records replayed by this process's boot-time recovery.\n\
             # TYPE chatiyp_recovery_replayed_total counter\n\
             chatiyp_recovery_replayed_total {}",
            d.replayed
        )
        .expect("write");
        for (name, help, v) in [
            (
                "chatiyp_wal_segments",
                "WAL segment files on disk.",
                d.wal_segments as u64,
            ),
            ("chatiyp_wal_bytes", "Total WAL bytes on disk.", d.wal_bytes),
            (
                "chatiyp_checkpoint_version",
                "Version of the last checkpoint (0 = never checkpointed).",
                d.last_checkpoint_version,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}").expect("write");
        }
    }
    Response::text(200, out)
}

fn handle_stats(state: &AppState, chat: &ChatIyp, handle: &RetrievalHandle) -> Response {
    let snap = &handle.snapshot;
    let stats = iyp_graphdb::GraphStats::compute(snap.graph());
    let mut body = serde_json::to_value(&stats);
    // Graft the cache counters, the write epoch, and the live snapshot +
    // retrieval-index versions onto the GraphStats object so operators
    // see hit rates and ingest progress next to graph shape. The two
    // versions come from one paired resolve, so they always match.
    if let serde_json::Value::Map(entries) = &mut body {
        entries.push(("epoch".to_string(), serde_json::to_value(&snap.epoch())));
        entries.push((
            "graph_version".to_string(),
            serde_json::to_value(&snap.version()),
        ));
        entries.push((
            "index_version".to_string(),
            serde_json::to_value(&handle.index.version()),
        ));
        entries.push((
            "cache".to_string(),
            serde_json::to_value(&chat.query_cache().stats()),
        ));
        entries.push((
            "query_parallelism".to_string(),
            serde_json::to_value(&chat.config().query_parallelism),
        ));
        let rc = chat.resilience_stats();
        entries.push((
            "resilience".to_string(),
            json!({
                "retries": rc.retries,
                "degraded": rc.degraded,
                "shed": state.shed_count(),
            }),
        ));
        // Copy-on-write storage accounting: how much heap the snapshot
        // retains and how much of its paged storage is shared with other
        // live clones (older snapshots readers still pin, in-flight
        // ingest copies) versus privately owned.
        let mem = snap.graph().memory_stats();
        entries.push((
            "snapshot_retained_bytes".to_string(),
            serde_json::to_value(&mem.retained_bytes),
        ));
        // Durability is always present so dashboards can key on it:
        // `null` when serving purely in memory, otherwise the WAL shape
        // and checkpoint/recovery progress.
        entries.push((
            "durability".to_string(),
            match chat.durability_stats() {
                Some(d) => json!({
                    "wal_segments": d.wal_segments,
                    "wal_bytes": d.wal_bytes,
                    "last_checkpoint_version": d.last_checkpoint_version,
                    "replayed": d.replayed,
                }),
                None => serde_json::Value::Null,
            },
        ));
        entries.push((
            "pages".to_string(),
            json!({
                "node_pages": mem.node_pages,
                "node_pages_shared": mem.node_pages_shared,
                "rel_pages": mem.rel_pages,
                "rel_pages_shared": mem.rel_pages_shared,
                "label_shards": mem.label_shards,
                "label_shards_shared": mem.label_shards_shared,
                "index_partitions": mem.index_partitions,
                "index_partitions_shared": mem.index_partitions_shared,
            }),
        ));
    }
    Response::json(200, body.to_string())
}

fn handle_health(snap: &GraphSnapshot) -> Response {
    Response::json(
        200,
        json!({
            "status": "ok",
            "nodes": snap.node_count(),
            "relationships": snap.rel_count(),
        })
        .to_string(),
    )
}

/// Readiness. Reaching this handler means a snapshot is published (the
/// deferred path answers 503 in [`handle`] before dispatch), so it
/// reports ready plus the live version for probes that log it.
fn handle_healthz(snap: &GraphSnapshot) -> Response {
    Response::json(
        200,
        json!({"status": "ready", "graph_version": snap.version()}).to_string(),
    )
}

/// `POST /admin/ingest`: applies a [`DeltaBatch`] and publishes the
/// next `(snapshot, retrieval index)` pair. Readers in flight keep the
/// pair they resolved; the response reports the version transition, the
/// published retrieval-index version (always equal to `new_version`),
/// the new graph's size, and the graph clone/apply/swap plus index
/// derive/apply/swap timings in microseconds.
fn handle_ingest(chat: &ChatIyp, req: &Request) -> Response {
    let batch: DeltaBatch = match serde_json::from_slice(&req.body) {
        Err(e) => {
            return Response::json(
                400,
                json!({"error": format!("invalid ingest batch: {e}")}).to_string(),
            )
        }
        Ok(b) => b,
    };
    match chat.ingest(&batch) {
        Ok(report) => Response::json(
            200,
            json!({
                "old_version": report.graph.old_version,
                "new_version": report.graph.new_version,
                "index_version": report.index_version,
                "ops_applied": report.graph.ops_applied,
                "nodes": report.graph.nodes,
                "rels": report.graph.rels,
                "clone_us": report.graph.clone.as_micros() as u64,
                "apply_us": report.graph.apply.as_micros() as u64,
                "swap_us": report.graph.swap.as_micros() as u64,
                "index_derive_us": report.derive.as_micros() as u64,
                "index_apply_us": report.index_apply.as_micros() as u64,
                "index_swap_us": report.index_swap.as_micros() as u64,
            })
            .to_string(),
        ),
        // An invalid batch is the caller's fault; a WAL append failure
        // (real or fault-injected) is the substrate's. Keeping the
        // status codes apart lets ingest clients retry 503s blindly
        // without ever retrying a batch that can never apply.
        Err(IngestError::Delta(e)) => {
            Response::json(400, json!({"error": e.to_string()}).to_string())
        }
        Err(IngestError::Durability(e)) => Response::json(
            503,
            json!({"error": format!("ingest not persisted: {e}")}).to_string(),
        )
        .with_header("retry-after", "1"),
    }
}

/// `POST /admin/checkpoint`: atomically saves the current snapshot to
/// the data directory and deletes WAL segments it fully covers. Answers
/// 400 when the server runs without durability (no `--data-dir`), 500
/// when the save or truncation itself fails.
fn handle_checkpoint(chat: &ChatIyp) -> Response {
    use chatiyp_core::DurabilityError;
    match chat.checkpoint() {
        Ok(report) => Response::json(
            200,
            json!({
                "version": report.version,
                "snapshot_bytes": report.snapshot_bytes,
                "truncated_segments": report
                    .truncated_segments
                    .iter()
                    .map(|p| p.display().to_string())
                    .collect::<Vec<_>>(),
                "wal_segments": report.wal.segments,
                "wal_bytes": report.wal.bytes,
                "duration_us": report.duration.as_micros() as u64,
            })
            .to_string(),
        ),
        Err(DurabilityError::NotConfigured) => Response::json(
            400,
            json!({"error": DurabilityError::NotConfigured.to_string()}).to_string(),
        ),
        Err(e) => Response::json(
            500,
            json!({"error": format!("checkpoint failed: {e}")}).to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatiyp_core::ChatIypConfig;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;

    fn chat() -> AppState {
        AppState::ready(Arc::new(ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
        )))
    }

    /// A scratch data directory under the OS temp dir, wiped per test.
    fn fresh_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("chatiyp_server_api_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A durable pipeline over `dir` (recovers whatever is there).
    fn durable_chat(dir: &std::path::Path) -> AppState {
        let dcfg = chatiyp_core::DurabilityConfig::new(dir);
        let (chat, _report) = ChatIyp::open_durable(
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                ..Default::default()
            },
            &dcfg,
            || generate(&IypConfig::tiny()),
        )
        .expect("open durable pipeline");
        AppState::ready(Arc::new(chat))
    }

    fn ingest_two_nodes(c: &AppState) -> Response {
        let mut batch = DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64512i64));
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64513i64));
        let body = serde_json::to_string(&batch).unwrap();
        handle(c, &req("POST", "/admin/ingest", &body))
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            target: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            http11: true,
        }
    }

    #[test]
    fn ask_endpoint_answers() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["answer"].as_str().unwrap().contains("IIJ"));
        assert_eq!(body["route"], "cypher");
        assert!(body["cypher"].as_str().unwrap().contains("2497"));
    }

    #[test]
    fn ask_rejects_bad_json_and_empty_question() {
        let c = chat();
        assert_eq!(handle(&c, &req("POST", "/ask", "not json")).status, 400);
        assert_eq!(
            handle(&c, &req("POST", "/ask", r#"{"question":"  "}"#)).status,
            400
        );
    }

    #[test]
    fn cypher_endpoint_runs_readonly_queries() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/cypher",
                r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["rows"][0][0].as_i64().unwrap() > 0);
        // Write queries are refused.
        let r = handle(
            &c,
            &req("POST", "/cypher", r#"{"query":"CREATE (x:AS {asn: 1})"}"#),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn health_and_schema() {
        let c = chat();
        let r = handle(&c, &req("GET", "/health", ""));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["status"], "ok");
        assert!(body["nodes"].as_u64().unwrap() > 0);

        let r = handle(&c, &req("GET", "/schema", ""));
        assert_eq!(r.status, 200);
        assert!(String::from_utf8_lossy(&r.body).contains("ORIGINATE"));
    }

    #[test]
    fn stats_endpoint_reports_graph_shape() {
        let c = chat();
        let r = handle(&c, &req("GET", "/stats", ""));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["nodes"].as_u64().unwrap() > 0);
        assert!(body["nodes_by_label"]["AS"].as_u64().unwrap() > 0);
        assert!(body["rels_by_type"]["ORIGINATE"].as_u64().unwrap() > 0);
        assert!(body["degree"]["mean"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn stats_endpoint_exposes_cache_counters_and_epoch() {
        let c = chat();
        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        // Existing graph-shape keys survive the merge.
        assert!(body["nodes"].as_u64().unwrap() > 0);
        assert!(body["epoch"].as_u64().is_some());
        assert_eq!(body["cache"]["hits"].as_u64(), Some(0));
        assert_eq!(body["cache"]["misses"].as_u64(), Some(0));

        // Two identical /cypher calls: the second is a hit, visible in /stats.
        let q = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
        assert_eq!(handle(&c, &req("POST", "/cypher", q)).status, 200);
        assert_eq!(handle(&c, &req("POST", "/cypher", q)).status, 200);
        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["cache"]["misses"].as_u64(), Some(1));
        assert_eq!(body["cache"]["hits"].as_u64(), Some(1));
        assert_eq!(body["cache"]["len"].as_u64(), Some(1));
    }

    #[test]
    fn cypher_responses_identical_across_cache_hit() {
        let c = chat();
        let q = r#"{"query":"MATCH (a:AS) RETURN a.asn ORDER BY a.asn"}"#;
        let cold = handle(&c, &req("POST", "/cypher", q));
        let warm = handle(&c, &req("POST", "/cypher", q));
        assert_eq!(cold.status, 200);
        assert_eq!(cold.body, warm.body, "cache hit changed the wire bytes");
    }

    #[test]
    fn ask_with_trace_param_returns_span_tree() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask?trace=1",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["trace"]["total_us"].as_u64().is_some());
        let spans = body["trace"]["spans"].as_array().unwrap();
        assert!(!spans.is_empty());
        // The root span is "ask" with no parent; children link back to it.
        assert_eq!(spans[0]["name"].as_str(), Some("ask"));
        assert!(spans[0]["parent"].is_null());
        assert_eq!(spans[1]["parent"].as_u64(), Some(0));
        // Without the flag, no trace key is grafted on.
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["trace"].is_null());
    }

    #[test]
    fn trace_zero_and_false_disable_the_tree() {
        let c = chat();
        for target in ["/ask?trace=0", "/ask?trace=false"] {
            let r = handle(
                &c,
                &req(
                    "POST",
                    target,
                    r#"{"question":"What is the name of AS2497?"}"#,
                ),
            );
            assert_eq!(r.status, 200);
            let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
            assert!(body["trace"].is_null(), "{target} grafted a trace");
        }
    }

    #[test]
    fn cypher_profile_returns_per_operator_stats() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/cypher",
                r#"{"query":"PROFILE MATCH (a:AS) RETURN count(a)"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        // The query result itself still comes back...
        assert!(body["rows"][0][0].as_i64().unwrap() > 0);
        // ...plus the profile: per-op rows/db hits/time and the totals.
        let ops = body["profile"]["ops"].as_array().unwrap();
        assert_eq!(ops.len(), 2, "Match + Return");
        assert_eq!(ops[0]["name"].as_str(), Some("Match"));
        assert!(ops[0]["db_hits"].as_u64().unwrap() > 0);
        assert!(ops[0]["time_us"].as_u64().is_some());
        assert!(body["profile"]["total_db_hits"].as_u64().unwrap() > 0);
        assert_eq!(body["profile"]["result_rows"].as_u64(), Some(1));
        assert!(body["profile"]["rendered"]
            .as_str()
            .unwrap()
            .contains("dbHits="));
    }

    #[test]
    fn cypher_explain_returns_plan_without_executing() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/cypher",
                r#"{"query":"explain MATCH (a:AS) RETURN count(a)"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let plan = body["plan"].as_str().unwrap();
        assert!(plan.contains("LabelScan(:AS"), "{plan}");
        assert!(body["rows"].is_null(), "EXPLAIN must not execute");
    }

    #[test]
    fn cypher_profile_rejects_bad_queries() {
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/cypher",
                r#"{"query":"PROFILE MATCH (a RETURN a"}"#,
            ),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let c = chat();
        // Warm the pipeline so stage histograms exist.
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let r = handle(&c, &req("GET", "/metrics", ""));
        assert_eq!(r.status, 200);
        let text = String::from_utf8(r.body).unwrap();
        // Pipeline stage histograms.
        assert!(
            text.contains("# TYPE chatiyp_stage_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("chatiyp_stage_seconds_bucket{stage=\"parse\",le="));
        assert!(text.contains("chatiyp_stage_seconds_count{stage=\"ask_total\"} 1"));
        // HTTP series from the /ask call above.
        assert!(text.contains("chatiyp_http_request_seconds_bucket{path=\"/ask\",le="));
        assert!(text.contains("chatiyp_http_requests_total{path=\"/ask\",status=\"200\"} 1"));
        // Cache counters and graph gauges are appended at scrape time.
        assert!(text.contains("chatiyp_cache_events_total{kind=\"misses\"}"));
        assert!(text.contains("# TYPE chatiyp_graph_nodes gauge"));
        assert!(text.contains("\nchatiyp_graph_epoch "));
    }

    #[test]
    fn metrics_text_is_well_formed() {
        let c = chat();
        handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        // Every non-comment line is `<series> <number>`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!series.is_empty(), "bad line: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
        }
        // Each metric name gets exactly one HELP and one TYPE header.
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert!(seen.insert(name.to_string()), "duplicate TYPE for {name}");
        }
    }

    #[test]
    fn unknown_requests_are_counted_under_other() {
        let c = chat();
        handle(&c, &req("GET", "/not-a-route", ""));
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("chatiyp_http_requests_total{path=\"other\",status=\"404\"} 1"),
            "{text}"
        );
    }

    /// `GET /stats` serves exactly the fields README.md documents — this
    /// is the contract test that keeps the docs and the endpoint in sync.
    /// If you add a field here, document it in README.md (and vice versa).
    #[test]
    fn stats_serves_exactly_the_documented_fields() {
        let c = chat();
        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let serde_json::Value::Map(entries) = &body else {
            panic!("stats body is not an object")
        };
        let mut got: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        got.sort_unstable();
        let documented = [
            "cache",
            "degree",
            "durability",
            "epoch",
            "graph_version",
            "index_version",
            "nodes",
            "nodes_by_label",
            "pages",
            "query_parallelism",
            "rels",
            "rels_by_type",
            "resilience",
            "snapshot_retained_bytes",
        ];
        assert_eq!(
            got, documented,
            "stats fields drifted from the documented set"
        );
        // In-memory pipelines report durability explicitly as null, so
        // dashboards can tell "not persisting" from "field missing".
        assert!(body["durability"].is_null(), "{body}");
        // The paged-storage accounting object carries exactly the
        // documented counters, and the retained-bytes figure is a real
        // (nonzero for a generated dataset) number.
        let serde_json::Value::Map(pages) = &body["pages"] else {
            panic!("pages is not an object")
        };
        let mut page_keys: Vec<&str> = pages.iter().map(|(k, _)| k.as_str()).collect();
        page_keys.sort_unstable();
        assert_eq!(
            page_keys,
            [
                "index_partitions",
                "index_partitions_shared",
                "label_shards",
                "label_shards_shared",
                "node_pages",
                "node_pages_shared",
                "rel_pages",
                "rel_pages_shared",
            ],
            "page accounting drifted from the documented set"
        );
        assert!(body["snapshot_retained_bytes"].as_u64().unwrap_or(0) > 0);
        assert!(body["pages"]["node_pages"].as_u64().unwrap_or(0) > 0);
        // The nested cache object too: these counters are documented.
        let serde_json::Value::Map(cache) = &body["cache"] else {
            panic!("cache is not an object")
        };
        let mut cache_keys: Vec<&str> = cache.iter().map(|(k, _)| k.as_str()).collect();
        cache_keys.sort_unstable();
        assert_eq!(
            cache_keys,
            [
                "capacity",
                "evictions",
                "expirations",
                "hits",
                "invalidations",
                "len",
                "misses",
                "plan"
            ],
            "cache counters drifted from the documented set"
        );
        // Plan-cache sub-counters include the compiled count (PlanCache
        // entries that carry a slot-compiled form alongside the AST).
        assert!(
            body["cache"]["plan"]["compiled"].as_u64().is_some(),
            "plan cache stats missing the compiled counter"
        );
        // The configured worker count is an honest number, never zero.
        assert!(
            body["query_parallelism"].as_u64().unwrap_or(0) >= 1,
            "query_parallelism must be at least 1"
        );
        // The resilience object carries exactly the documented counters.
        let serde_json::Value::Map(res) = &body["resilience"] else {
            panic!("resilience is not an object")
        };
        let mut res_keys: Vec<&str> = res.iter().map(|(k, _)| k.as_str()).collect();
        res_keys.sort_unstable();
        assert_eq!(
            res_keys,
            ["degraded", "retries", "shed"],
            "resilience counters drifted from the documented set"
        );
    }

    /// A pipeline with a permanent injected fault at one point.
    fn faulty_chat(point: chatiyp_core::FaultPoint) -> AppState {
        use chatiyp_core::{FaultPlan, FaultRule, ResilienceConfig, RetryPolicy};
        let plan = FaultPlan::new(7).rule(point, FaultRule::window(0, u64::MAX));
        AppState::ready(Arc::new(ChatIyp::new(
            generate(&IypConfig::tiny()),
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                resilience: ResilienceConfig {
                    faults: Some(plan.into_arc()),
                    retry: RetryPolicy {
                        base: std::time::Duration::ZERO,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        )))
    }

    #[test]
    fn ask_surfaces_the_degraded_marker() {
        // Healthy pipeline: degraded is null on the wire.
        let c = chat();
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(body["degraded"].is_null(), "{body}");

        // Translator outage: still 200, but marked degraded and served
        // from the vector fallback.
        let c = faulty_chat(chatiyp_core::FaultPoint::LlmTranslate);
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(
            body["degraded"].as_str(),
            Some("text2cypher-unavailable"),
            "{body}"
        );
        assert_eq!(body["route"], "vector-fallback", "{body}");
    }

    #[test]
    fn cypher_answers_503_with_retry_after_during_exec_outage() {
        let c = faulty_chat(chatiyp_core::FaultPoint::Exec);
        let q = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
        let r = handle(&c, &req("POST", "/cypher", q));
        assert_eq!(r.status, 503, "{}", String::from_utf8_lossy(&r.body));
        assert!(
            r.extra_headers
                .iter()
                .any(|(n, v)| *n == "retry-after" && v == "1"),
            "503 lacks retry-after"
        );
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(
            body["error"]
                .as_str()
                .unwrap()
                .contains("temporarily unavailable"),
            "{body}"
        );
        // A bad query is still a 400, not a 503 — error classes stay apart.
        let c = chat();
        let r = handle(
            &c,
            &req("POST", "/cypher", r#"{"query":"MATCH (a RETURN a"}"#),
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn stats_and_metrics_expose_resilience_counters() {
        let c = faulty_chat(chatiyp_core::FaultPoint::LlmTranslate);
        c.note_shed();
        c.note_shed();
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                r#"{"question":"What is the name of AS2497?"}"#,
            ),
        );
        assert_eq!(r.status, 200);

        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["resilience"]["shed"].as_u64(), Some(2), "{body}");
        assert!(
            body["resilience"]["degraded"].as_u64().unwrap() >= 1,
            "{body}"
        );
        assert!(
            body["resilience"]["retries"].as_u64().unwrap() >= 1,
            "{body}"
        );

        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("# TYPE chatiyp_retries_total counter"),
            "{text}"
        );
        assert!(text.contains("# TYPE chatiyp_degraded_total counter"));
        assert!(text.contains("# TYPE chatiyp_shed_total counter"));
        assert!(text.contains("\nchatiyp_shed_total 2"), "{text}");
    }

    #[test]
    fn checkpoint_without_data_dir_is_a_400() {
        let c = chat();
        let r = handle(&c, &req("POST", "/admin/checkpoint", ""));
        assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(&r.body));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(
            body["error"].as_str().unwrap().contains("not configured"),
            "{body}"
        );
    }

    #[test]
    fn durable_stats_expose_the_wal_shape() {
        let dir = fresh_dir("durable_stats");
        let c = durable_chat(&dir);
        assert_eq!(ingest_two_nodes(&c).status, 200);

        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let d = &body["durability"];
        assert!(!d.is_null(), "{body}");
        assert_eq!(d["wal_segments"].as_u64(), Some(1), "{body}");
        assert!(d["wal_bytes"].as_u64().unwrap() > 0, "{body}");
        assert_eq!(d["last_checkpoint_version"].as_u64(), Some(0), "{body}");
        assert_eq!(d["replayed"].as_u64(), Some(0), "{body}");
    }

    #[test]
    fn checkpoint_endpoint_saves_and_truncates() {
        let dir = fresh_dir("checkpoint_endpoint");
        let c = durable_chat(&dir);
        assert_eq!(ingest_two_nodes(&c).status, 200);

        let r = handle(&c, &req("POST", "/admin/checkpoint", ""));
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["version"].as_u64(), Some(2), "{body}");
        assert!(body["snapshot_bytes"].as_u64().unwrap() > 0, "{body}");
        // The active segment was fully covered, so it went away.
        assert_eq!(
            body["truncated_segments"].as_array().unwrap().len(),
            1,
            "{body}"
        );
        assert_eq!(body["wal_segments"].as_u64(), Some(0), "{body}");
        assert!(body["duration_us"].as_u64().is_some(), "{body}");
        assert!(dir.join("checkpoint.json").exists());

        // /stats reflects the checkpoint.
        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(
            body["durability"]["last_checkpoint_version"].as_u64(),
            Some(2),
            "{body}"
        );
        assert_eq!(body["durability"]["wal_bytes"].as_u64(), Some(0), "{body}");
    }

    #[test]
    fn durable_recovery_replays_and_reports_in_metrics() {
        let dir = fresh_dir("durable_recovery_metrics");
        {
            let c = durable_chat(&dir);
            assert_eq!(ingest_two_nodes(&c).status, 200);
        }
        // A second boot over the same directory replays the WAL record.
        let c = durable_chat(&dir);
        let r = handle(&c, &req("GET", "/healthz", ""));
        let hz: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(hz["graph_version"].as_u64(), Some(2), "{hz}");

        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("# TYPE chatiyp_recovery_replayed_total counter"),
            "{text}"
        );
        assert!(
            text.contains("\nchatiyp_recovery_replayed_total 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE chatiyp_wal_segments gauge"), "{text}");
        assert!(text.contains("# TYPE chatiyp_wal_bytes gauge"), "{text}");
        assert!(
            text.contains("# TYPE chatiyp_checkpoint_version gauge"),
            "{text}"
        );

        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["durability"]["replayed"].as_u64(), Some(1), "{body}");
    }

    #[test]
    fn durable_ingest_records_wal_histograms() {
        let dir = fresh_dir("durable_ingest_histograms");
        let c = durable_chat(&dir);
        assert_eq!(ingest_two_nodes(&c).status, 200);
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("chatiyp_wal_append_seconds_count 1"),
            "{text}"
        );
        // fsync=always: every append synced.
        assert!(text.contains("chatiyp_wal_fsync_seconds_count 1"), "{text}");

        assert_eq!(
            handle(&c, &req("POST", "/admin/checkpoint", "")).status,
            200
        );
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("chatiyp_checkpoint_seconds_count 1"),
            "{text}"
        );
    }

    #[test]
    fn memory_only_metrics_omit_durability_series() {
        let c = chat();
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(!text.contains("chatiyp_recovery_replayed_total"), "{text}");
        assert!(!text.contains("chatiyp_wal_segments"), "{text}");
    }

    #[test]
    fn wal_outage_answers_503_and_publishes_nothing() {
        use chatiyp_core::{DurabilityConfig, FaultPlan, FaultPoint, FaultRule};
        let dir = fresh_dir("wal_outage_503");
        let plan = FaultPlan::new(7).rule(FaultPoint::Wal, FaultRule::window(0, u64::MAX));
        let (chat, _report) = ChatIyp::open_durable(
            ChatIypConfig {
                lm: LmConfig {
                    seed: 42,
                    skill: 1.0,
                    variety: 0.0,
                },
                resilience: chatiyp_core::ResilienceConfig {
                    faults: Some(plan.into_arc()),
                    ..Default::default()
                },
                ..Default::default()
            },
            &DurabilityConfig::new(&dir),
            || generate(&IypConfig::tiny()),
        )
        .unwrap();
        let c = AppState::ready(Arc::new(chat));

        let r = ingest_two_nodes(&c);
        assert_eq!(r.status, 503, "{}", String::from_utf8_lossy(&r.body));
        assert!(
            r.extra_headers
                .iter()
                .any(|(n, v)| *n == "retry-after" && v == "1"),
            "503 lacks retry-after"
        );
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(
            body["error"].as_str().unwrap().contains("not persisted"),
            "{body}"
        );
        // Nothing published, nothing on disk to replay.
        let r = handle(&c, &req("GET", "/healthz", ""));
        let hz: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(hz["graph_version"].as_u64(), Some(1), "{hz}");
        let r = handle(&c, &req("GET", "/stats", ""));
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["durability"]["wal_bytes"].as_u64(), Some(0), "{body}");
        // A bad batch on the same durable pipeline is still a 400.
        let mut bad = DeltaBatch::new();
        bad.remove_node(iyp_graphdb::NodeId(u64::MAX));
        let r = handle(
            &c,
            &req(
                "POST",
                "/admin/ingest",
                &serde_json::to_string(&bad).unwrap(),
            ),
        );
        assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(&r.body));
    }

    #[test]
    fn unknown_paths_and_methods() {
        let c = chat();
        assert_eq!(handle(&c, &req("GET", "/nope", "")).status, 404);
        assert_eq!(handle(&c, &req("DELETE", "/ask", "")).status, 405);
    }

    #[test]
    fn healthz_reports_ready_with_version() {
        let c = chat();
        let r = handle(&c, &req("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["status"], "ready");
        assert_eq!(body["graph_version"].as_u64(), Some(1));
    }

    #[test]
    fn deferred_state_serves_503_until_published() {
        let state = AppState::deferred();
        for (method, path) in [
            ("GET", "/healthz"),
            ("GET", "/health"),
            ("GET", "/stats"),
            ("POST", "/ask"),
        ] {
            let r = handle(&state, &req(method, path, "{}"));
            assert_eq!(r.status, 503, "{method} {path}");
            assert!(
                r.extra_headers
                    .iter()
                    .any(|(n, v)| *n == "retry-after" && v == "1"),
                "{method} {path} lacks retry-after"
            );
        }
        // Publish flips readiness; a second publish is refused.
        let built = chat();
        let chat = Arc::clone(built.chat().unwrap());
        assert!(state.publish(Arc::clone(&chat)));
        assert!(!state.publish(chat));
        assert_eq!(handle(&state, &req("GET", "/healthz", "")).status, 200);
    }

    #[test]
    fn ingest_endpoint_swaps_versions_and_updates_reads() {
        let c = chat();
        let count_q = r#"{"query":"MATCH (a:AS) RETURN count(a)"}"#;
        let count = |c: &AppState| -> i64 {
            let r = handle(c, &req("POST", "/cypher", count_q));
            assert_eq!(r.status, 200);
            let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
            body["rows"][0][0].as_i64().unwrap()
        };
        let before = count(&c);

        let mut batch = DeltaBatch::new();
        let x = batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64512i64));
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64513i64));
        batch.set_node_prop(x, "name", iyp_graphdb::Value::from("Ingested"));
        let body = serde_json::to_string(&batch).unwrap();
        let r = handle(&c, &req("POST", "/admin/ingest", &body));
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
        let rep: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(rep["old_version"].as_u64(), Some(1));
        assert_eq!(rep["new_version"].as_u64(), Some(2));
        assert_eq!(rep["index_version"].as_u64(), Some(2));
        assert_eq!(rep["ops_applied"].as_u64(), Some(3));
        assert!(rep["nodes"].as_u64().unwrap() > 0);
        assert!(rep["clone_us"].as_u64().is_some());
        assert!(rep["apply_us"].as_u64().is_some());
        assert!(rep["swap_us"].as_u64().is_some());
        assert!(rep["index_derive_us"].as_u64().is_some());
        assert!(rep["index_apply_us"].as_u64().is_some());
        assert!(rep["index_swap_us"].as_u64().is_some());

        // Reads see the new snapshot — including through the cache.
        assert_eq!(count(&c), before + 2);
        let r = handle(&c, &req("GET", "/stats", ""));
        let stats: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(stats["graph_version"].as_u64(), Some(2));
        assert_eq!(stats["index_version"].as_u64(), Some(2));
        let r = handle(&c, &req("GET", "/healthz", ""));
        let hz: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(hz["graph_version"].as_u64(), Some(2));
    }

    #[test]
    fn ingest_rejects_bad_batches_without_swapping() {
        let c = chat();
        // Not JSON at all.
        assert_eq!(
            handle(&c, &req("POST", "/admin/ingest", "not json")).status,
            400
        );
        // A structurally valid batch with an invalid op: nothing publishes.
        let mut batch = DeltaBatch::new();
        batch.remove_node(iyp_graphdb::NodeId(u64::MAX));
        let body = serde_json::to_string(&batch).unwrap();
        assert_eq!(handle(&c, &req("POST", "/admin/ingest", &body)).status, 400);
        let r = handle(&c, &req("GET", "/healthz", ""));
        let hz: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(
            hz["graph_version"].as_u64(),
            Some(1),
            "failed batch swapped"
        );
    }

    #[test]
    fn metrics_exposes_graph_version_gauge() {
        let c = chat();
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("# TYPE chatiyp_graph_version gauge"),
            "{text}"
        );
        assert!(text.contains("\nchatiyp_graph_version 1"));

        let batch = DeltaBatch::new();
        let body = serde_json::to_string(&batch).unwrap();
        assert_eq!(handle(&c, &req("POST", "/admin/ingest", &body)).status, 200);
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\nchatiyp_graph_version 2"));
        // The swap histograms are recorded under the snapshot metric,
        // with the COW clone stage broken out from the batch apply.
        for stage in ["clone", "apply", "swap"] {
            assert!(
                text.contains(&format!(
                    "chatiyp_snapshot_swap_seconds_count{{stage=\"{stage}\"}} 1"
                )),
                "missing snapshot swap stage {stage}: {text}"
            );
        }
    }

    #[test]
    fn metrics_exposes_snapshot_bytes_gauge() {
        let c = chat();
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("# TYPE chatiyp_snapshot_bytes gauge"),
            "{text}"
        );
        let line = text
            .lines()
            .find(|l| l.starts_with("chatiyp_snapshot_bytes "))
            .expect("gauge sample missing");
        let bytes: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(bytes > 0, "snapshot bytes gauge is zero");
    }

    #[test]
    fn metrics_exposes_index_version_gauge_and_refresh_histograms() {
        let c = chat();
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        assert!(
            text.contains("# TYPE chatiyp_index_version gauge"),
            "{text}"
        );
        assert!(text.contains("\nchatiyp_index_version 1"));

        let batch = DeltaBatch::new();
        let body = serde_json::to_string(&batch).unwrap();
        assert_eq!(handle(&c, &req("POST", "/admin/ingest", &body)).status, 200);
        let r = handle(&c, &req("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        // The index version moves in lockstep with the graph version.
        assert!(text.contains("\nchatiyp_index_version 2"));
        assert!(text.contains("\nchatiyp_graph_version 2"));
        // The refresh stages are recorded under the index metric.
        for stage in ["derive", "apply", "swap"] {
            assert!(
                text.contains(&format!(
                    "chatiyp_index_refresh_seconds_count{{stage=\"{stage}\"}} 1"
                )),
                "missing index refresh stage {stage}: {text}"
            );
        }
    }

    /// The acceptance e2e: a node added through `POST /admin/ingest` is
    /// retrievable by the semantic fallback immediately afterwards — on
    /// a stale index the fallback would serve pre-ingest context and
    /// this test fails.
    #[test]
    fn ingest_endpoint_refreshes_semantic_fallback_and_catalog() {
        let c = chat();
        let name = "Ingest Networks 64512";
        let fallback_q =
            json!({"question": format!("Tell me everything interesting about {name}")}).to_string();

        // Before the ingest the fallback cannot surface the node.
        let r = handle(&c, &req("POST", "/ask", &fallback_q));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(
            !body["contexts"]
                .as_array()
                .unwrap()
                .iter()
                .any(|t| t.as_str().unwrap().contains(name)),
            "new node retrieved before it was ingested: {body}"
        );

        let mut batch = DeltaBatch::new();
        let x = batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64512i64));
        batch.set_node_prop(x, "name", iyp_graphdb::Value::from(name));
        let r = handle(
            &c,
            &req(
                "POST",
                "/admin/ingest",
                &serde_json::to_string(&batch).unwrap(),
            ),
        );
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));

        // The semantic fallback now retrieves the freshly ingested node.
        let r = handle(&c, &req("POST", "/ask", &fallback_q));
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["route"], "vector-fallback", "{body}");
        assert!(
            body["contexts"]
                .as_array()
                .unwrap()
                .iter()
                .any(|t| t.as_str().unwrap().contains(name)),
            "semantic fallback missed the ingested node: {body}"
        );

        // The entity catalog refreshed too: the new name now routes
        // through Cypher and resolves to the ingested ASN.
        let r = handle(
            &c,
            &req(
                "POST",
                "/ask",
                &json!({"question": format!("What is the ASN of {name}?")}).to_string(),
            ),
        );
        assert_eq!(r.status, 200);
        let body: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(body["route"], "cypher", "{body}");
        assert!(body["answer"].as_str().unwrap().contains("64512"), "{body}");
    }
}
