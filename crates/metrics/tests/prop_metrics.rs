//! Property tests for the evaluation metrics: range bounds, identity
//! maxima, and correlation-statistic invariants.

use iyp_metrics::correlation::{kendall_tau, pearson, ranks, spearman};
use iyp_metrics::stats::{summarize, Histogram};
use iyp_metrics::{bertscore, bleu, rouge, rouge_1, rouge_2, rouge_l};
use proptest::prelude::*;

fn sentence() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8}", 1..15).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_metrics_bounded(a in sentence(), b in sentence()) {
        for (name, s) in [
            ("bleu", bleu(&a, &b)),
            ("rouge", rouge(&a, &b)),
            ("rouge1", rouge_1(&a, &b)),
            ("rouge2", rouge_2(&a, &b)),
            ("rougeL", rouge_l(&a, &b)),
            ("bertscore", bertscore(&a, &b)),
        ] {
            prop_assert!((0.0..=1.0).contains(&s), "{name} = {s} for {a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_is_maximal(a in sentence(), b in sentence()) {
        prop_assert!(bleu(&a, &a) >= bleu(&b, &a) - 1e-9);
        prop_assert!(rouge_1(&a, &a) >= rouge_1(&b, &a) - 1e-9);
        prop_assert!(rouge_l(&a, &a) >= rouge_l(&b, &a) - 1e-9);
        prop_assert!(bertscore(&a, &a) >= bertscore(&b, &a) - 1e-6);
        // Identity is a perfect ROUGE-1 score always; BLEU-4's smoothing
        // only reaches 1.0 once all four n-gram orders exist.
        prop_assert!((rouge_1(&a, &a) - 1.0).abs() < 1e-9);
        if a.split_whitespace().count() >= 4 {
            prop_assert!((bleu(&a, &a) - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(bleu(&a, &a) > 0.4);
        }
    }

    #[test]
    fn rouge1_is_symmetric_in_f1(a in sentence(), b in sentence()) {
        // F1 of unigram overlap is symmetric by construction.
        prop_assert!((rouge_1(&a, &b) - rouge_1(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn concatenating_reference_content_never_zeroes_rouge(a in sentence(), b in sentence()) {
        // A candidate containing the whole reference keeps full recall.
        let candidate = format!("{b} {a}");
        let r_full = rouge_1(&candidate, &a);
        prop_assert!(r_full > 0.0);
    }

    #[test]
    fn pearson_and_spearman_bounded(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..40),
        ys in proptest::collection::vec(-1e3f64..1e3, 2..40),
    ) {
        let n = xs.len().min(ys.len());
        let (x, y) = (&xs[..n], &ys[..n]);
        for (name, r) in [
            ("pearson", pearson(x, y)),
            ("spearman", spearman(x, y)),
            ("kendall", kendall_tau(x, y)),
        ] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{name} = {r}");
        }
    }

    #[test]
    fn correlation_with_self_is_one(xs in proptest::collection::vec(-1e3f64..1e3, 3..40)) {
        // Degenerate (constant) series are defined to correlate at 0.
        let constant = xs.iter().all(|v| *v == xs[0]);
        let p = pearson(&xs, &xs);
        if constant {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert!((p - 1.0).abs() < 1e-9, "pearson self = {p}");
            prop_assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_flips_under_negation(xs in proptest::collection::vec(-1e3f64..1e3, 3..40)) {
        let neg: Vec<f64> = xs.iter().map(|v| -v).collect();
        prop_assert!((pearson(&xs, &neg) + pearson(&xs, &xs)).abs() < 1e-9);
    }

    #[test]
    fn ranks_are_a_permutation_mean(xs in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let r = ranks(&xs);
        prop_assert_eq!(r.len(), xs.len());
        // Mid-ranks always sum to n(n+1)/2 regardless of ties.
        let sum: f64 = r.iter().sum();
        let n = xs.len() as f64;
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn summary_is_internally_consistent(xs in proptest::collection::vec(0f64..1.0, 1..100)) {
        let s = summarize(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.q25 + 1e-12);
        prop_assert!(s.q25 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q75 + 1e-12);
        prop_assert!(s.q75 <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!((0.0..=1.0).contains(&s.share_above_075));
    }

    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-0.5f64..1.5, 0..200), bins in 1usize..20) {
        let h = Histogram::build(&xs, bins);
        prop_assert_eq!(h.bins.len(), bins);
        prop_assert_eq!(h.bins.iter().sum::<usize>(), xs.len());
        prop_assert_eq!(h.total, xs.len());
    }
}
