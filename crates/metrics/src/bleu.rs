//! BLEU (Papineni et al., 2002): modified n-gram precision with brevity
//! penalty. Implemented as sentence-level BLEU-4 with add-one smoothing
//! for higher-order n-grams (Lin & Och smoothing-1), the standard choice
//! when scoring single answers.

use iyp_embed::tokenize::words;
use std::collections::HashMap;

/// Computes sentence-level BLEU-4 of `candidate` against `reference`.
/// Returns a value in [0, 1].
pub fn bleu(candidate: &str, reference: &str) -> f64 {
    bleu_n(candidate, reference, 4)
}

/// BLEU with a configurable maximum n-gram order.
pub fn bleu_n(candidate: &str, reference: &str, max_n: usize) -> f64 {
    let cand = words(candidate);
    let refr = words(reference);
    if cand.is_empty() || refr.is_empty() {
        return 0.0;
    }
    let max_n = max_n.clamp(1, 4);
    let mut log_sum = 0.0;
    for n in 1..=max_n {
        let p = modified_precision(&cand, &refr, n);
        // Smoothing-1: add-one on higher orders with zero matches.
        let p = if p == 0.0 && n > 1 {
            1.0 / (2.0 * cand.len().saturating_sub(n - 1).max(1) as f64)
        } else {
            p
        };
        if p == 0.0 {
            return 0.0; // no unigram overlap at all
        }
        log_sum += p.ln() / max_n as f64;
    }
    let bp = brevity_penalty(cand.len(), refr.len());
    (bp * log_sum.exp()).clamp(0.0, 1.0)
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut counts: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *counts.entry(w).or_default() += 1;
        }
    }
    counts
}

fn modified_precision(cand: &[String], refr: &[String], n: usize) -> f64 {
    let cand_counts = ngram_counts(cand, n);
    if cand_counts.is_empty() {
        return 0.0;
    }
    let ref_counts = ngram_counts(refr, n);
    let total: usize = cand_counts.values().sum();
    let clipped: usize = cand_counts
        .iter()
        .map(|(gram, count)| (*count).min(ref_counts.get(gram).copied().unwrap_or(0)))
        .sum();
    clipped as f64 / total as f64
}

fn brevity_penalty(cand_len: usize, ref_len: usize) -> f64 {
    if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        let t = "the share of japan's population served by as2497 is 33.3";
        assert!((bleu(t, t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_texts_score_zero() {
        assert_eq!(bleu("alpha beta gamma", "delta epsilon zeta"), 0.0);
    }

    #[test]
    fn paraphrase_is_heavily_penalized() {
        // Same facts, different phrasing: the paper's BLEU complaint.
        let reference = "The share of Japan's population served by AS2497 is 33.3.";
        let paraphrase = "33.3 — that is the population share AS2497 serves in Japan.";
        let s = bleu(paraphrase, reference);
        assert!(s < 0.35, "paraphrase BLEU unexpectedly high: {s}");
        assert!(s > 0.0);
    }

    #[test]
    fn near_copy_scores_high() {
        let reference = "The number of prefixes originated by AS2497 is 17.";
        let near = "The number of prefixes originated by AS2497 is 17";
        assert!(bleu(near, reference) > 0.85);
    }

    #[test]
    fn brevity_penalty_applies() {
        let reference = "the quick brown fox jumps over the lazy dog today";
        let short = "the quick brown";
        let long = "the quick brown fox jumps over the lazy dog today indeed";
        assert!(bleu(short, reference) < bleu(long, reference));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(bleu("", "reference"), 0.0);
        assert_eq!(bleu("candidate", ""), 0.0);
    }

    #[test]
    fn clipping_prevents_repetition_gaming() {
        let reference = "the cat sat on the mat";
        let spam = "the the the the the the";
        assert!(bleu(spam, reference) < 0.4);
    }

    #[test]
    fn monotone_in_overlap() {
        let reference = "a b c d e f g h";
        assert!(bleu("a b c d e f g h", reference) > bleu("a b c d x y z w", reference));
        assert!(bleu("a b c d x y z w", reference) > bleu("a x y z q r s t", reference));
    }
}
