//! # iyp-metrics
//!
//! The measurement instruments of the ChatIYP evaluation: the four
//! answer-quality metrics the paper compares ([`mod@bleu`], [`mod@rouge`],
//! [`mod@bertscore`], [`geval`]), plus distribution statistics ([`stats`])
//! and correlation analysis against ground-truth correctness
//! ([`correlation`]).
//!
//! ```
//! use iyp_metrics::{bleu::bleu, rouge::rouge, bertscore::bertscore};
//!
//! let reference = "The name of AS2497 is IIJ.";
//! let paraphrase = "IIJ — that is the name of AS2497.";
//! // Same facts, different wording: BLEU punishes, BERTScore forgives.
//! assert!(bleu(paraphrase, reference) < bertscore(paraphrase, reference));
//! assert!(rouge(paraphrase, reference) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod bertscore;
pub mod bleu;
pub mod correlation;
pub mod geval;
pub mod rouge;
pub mod stats;

pub use bertscore::bertscore;
pub use bleu::bleu;
pub use correlation::{kendall_tau, pearson, point_biserial, spearman};
pub use geval::{GEval, MetricKind};
pub use rouge::{rouge, rouge_1, rouge_2, rouge_l};
pub use stats::{summarize, Histogram, Summary};
