//! Distribution statistics: moments, quantiles, histograms and a
//! bimodality measure — the machinery behind Figure 2a/2b.

use serde::Serialize;

/// Summary of a score distribution.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
    /// Sarle's bimodality coefficient (> ~0.555 suggests bimodality).
    pub bimodality: f64,
    /// Share of samples above 0.75 (the paper's Easy-question headline).
    pub share_above_075: f64,
}

/// Computes a summary. Returns a degenerate all-zero summary for empty
/// input.
pub fn summarize(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            q25: 0.0,
            median: 0.0,
            q75: 0.0,
            max: 0.0,
            bimodality: 0.0,
            share_above_075: 0.0,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let std = var.sqrt();
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    let skew = if std > 0.0 && n > 2 {
        let m3 = values
            .iter()
            .map(|x| ((x - mean) / std).powi(3))
            .sum::<f64>()
            / n as f64;
        m3 * ((n * (n - 1)) as f64).sqrt() / (n as f64 - 2.0)
    } else {
        0.0
    };
    let kurt = if std > 0.0 && n > 3 {
        let m4 = values
            .iter()
            .map(|x| ((x - mean) / std).powi(4))
            .sum::<f64>()
            / n as f64;
        m4 - 3.0
    } else {
        0.0
    };
    let nf = n as f64;
    let bimodality = if n > 3 {
        (skew * skew + 1.0) / (kurt + 3.0 * (nf - 1.0).powi(2) / ((nf - 2.0) * (nf - 3.0)))
    } else {
        0.0
    };

    Summary {
        n,
        mean,
        std,
        min: sorted[0],
        q25: quantile(&sorted, 0.25),
        median: quantile(&sorted, 0.5),
        q75: quantile(&sorted, 0.75),
        max: sorted[n - 1],
        bimodality,
        share_above_075: values.iter().filter(|&&x| x > 0.75).count() as f64 / nf,
    }
}

/// Linear-interpolated quantile of a pre-sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-width histogram over [0, 1].
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Bin counts, lowest bin first.
    pub bins: Vec<usize>,
    /// Total samples.
    pub total: usize,
}

impl Histogram {
    /// Builds a histogram with `bins` equal bins over [0, 1]; values are
    /// clamped into range.
    pub fn build(values: &[f64], bins: usize) -> Histogram {
        let bins = bins.max(1);
        let mut counts = vec![0usize; bins];
        for &v in values {
            let idx = ((v.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            bins: counts,
            total: values.len(),
        }
    }

    /// Renders the histogram as an ASCII bar chart with bin labels.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let n = self.bins.len();
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            let bar_len = count * width / max;
            out.push_str(&format!(
                "[{lo:.2}-{hi:.2}) {:width$} {count}\n",
                "#".repeat(bar_len),
                width = width
            ));
        }
        out
    }

    /// The share of mass in the two outer quartile-bands versus the middle
    /// — a quick visual-bimodality check for tests.
    pub fn edge_mass(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.bins.len();
        let edge: usize = self
            .bins
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < n / 4 || *i >= n - n / 4)
            .map(|(_, c)| *c)
            .sum();
        edge as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 0.5).abs() < 1e-9);
        assert!((s.median - 0.5).abs() < 1e-9);
        assert!((s.q25 - 0.25).abs() < 1e-9);
        assert!((s.q75 - 0.75).abs() < 1e-9);
        assert!((s.share_above_075 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_degenerate() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn bimodal_sample_has_higher_coefficient_than_unimodal() {
        let bimodal: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 0.05 } else { 0.95 })
            .collect();
        let unimodal: Vec<f64> = (0..50).map(|i| 0.4 + 0.2 * (i as f64 / 49.0)).collect();
        let b = summarize(&bimodal).bimodality;
        let u = summarize(&unimodal).bimodality;
        assert!(b > 0.555, "bimodal coefficient {b}");
        assert!(b > u, "b={b} u={u}");
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let h = Histogram::build(&[0.0, 0.05, 0.5, 0.95, 1.0, 1.5, -0.2], 10);
        assert_eq!(h.total, 7);
        assert_eq!(h.bins.iter().sum::<usize>(), 7);
        assert_eq!(h.bins[0], 3); // 0.0, 0.05, -0.2
        assert_eq!(h.bins[9], 3); // 0.95, 1.0, 1.5
        assert_eq!(h.bins[5], 1);
    }

    #[test]
    fn histogram_renders() {
        let h = Histogram::build(&[0.1, 0.1, 0.9], 4);
        let s = h.render(20);
        assert!(s.contains("[0.00-0.25)"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn edge_mass_detects_bimodality() {
        let bimodal = Histogram::build(
            &(0..40)
                .map(|i| if i % 2 == 0 { 0.05 } else { 0.95 })
                .collect::<Vec<_>>(),
            10,
        );
        let flat = Histogram::build(&(0..40).map(|i| i as f64 / 40.0).collect::<Vec<_>>(), 10);
        assert!(bimodal.edge_mass() > flat.edge_mass());
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&sorted, 0.5) - 2.5).abs() < 1e-9);
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
    }
}
