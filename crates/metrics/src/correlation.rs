//! Correlation measures between metric scores and ground-truth
//! correctness — the quantitative backing of the paper's Finding 1
//! ("G-Eval aligns with human judgment better than BLEU/ROUGE/BERTScore").

/// Pearson product-moment correlation. Returns 0 for degenerate inputs.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Spearman rank correlation (Pearson over mid-ranks, handling ties).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

/// Kendall's tau-b (tie-corrected).
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither denominator part
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_x as f64) * (n0 - ties_y as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// Mid-ranks of a series (ties share the average rank).
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Point-biserial correlation of a continuous score against a binary
/// label — the natural "alignment with correctness" statistic when the
/// human-judgment proxy is right/wrong.
pub fn point_biserial(scores: &[f64], labels: &[bool]) -> f64 {
    let y: Vec<f64> = labels.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    pearson(scores, &y)
}

/// A bootstrap 95% confidence interval for Pearson correlation, using a
/// deterministic resampling scheme (fixed stride-based resamples, not an
/// RNG — reproducible without seeding ceremony).
pub fn pearson_ci(x: &[f64], y: &[f64], resamples: usize) -> (f64, f64) {
    let n = x.len();
    if n < 4 {
        let r = pearson(x, y);
        return (r, r);
    }
    let mut rs = Vec::with_capacity(resamples);
    for b in 0..resamples.max(8) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        // Deterministic pseudo-resample: index hashing by (b, i).
        for i in 0..n {
            let idx =
                (iyp_embed::embedder::fnv1a(format!("{b}:{i}").as_bytes()) % n as u64) as usize;
            xs.push(x[idx]);
            ys.push(y[idx]);
        }
        rs.push(pearson(&xs, &ys));
    }
    rs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lo = rs[(rs.len() as f64 * 0.025) as usize];
    let hi = rs[((rs.len() as f64 * 0.975) as usize).min(rs.len() - 1)];
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-9);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_degenerate() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // x^3, nonlinear monotone
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kendall_basic() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-9);
        let z = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &z) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn point_biserial_separates() {
        // Scores that track a binary label correlate strongly.
        let scores = [0.9, 0.85, 0.95, 0.1, 0.2, 0.15];
        let labels = [true, true, true, false, false, false];
        assert!(point_biserial(&scores, &labels) > 0.95);
        // Uninformative scores don't.
        let flat = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(point_biserial(&flat, &labels), 0.0);
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let r = pearson(&x, &y);
        let (lo, hi) = pearson_ci(&x, &y, 200);
        assert!(lo <= r && r <= hi, "({lo}, {hi}) should bracket {r}");
    }
}
