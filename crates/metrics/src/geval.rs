//! G-Eval as a metric: a thin adapter over the simulated GPT-4 judge in
//! `iyp-llm`, giving it the same `(candidate, reference) -> score` shape
//! as BLEU/ROUGE/BERTScore so the harness can sweep all four uniformly.

use iyp_llm::{GEvalJudge, SimLm};

/// A stateful G-Eval scorer (holds the judge).
pub struct GEval {
    judge: GEvalJudge,
}

impl GEval {
    /// Creates a scorer with the given judge seed.
    pub fn new(seed: u64) -> Self {
        GEval {
            judge: GEvalJudge::new(SimLm::with_seed(seed)),
        }
    }

    /// Scores a candidate answer against a reference answer for a
    /// question. Returns the sharpened G-Eval score in [0, 1].
    pub fn score(&self, question: &str, candidate: &str, reference: &str) -> f64 {
        self.judge.judge(question, candidate, reference).score
    }
}

/// The uniform metric interface used by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// BLEU-4 with smoothing.
    Bleu,
    /// Mean of ROUGE-1/2/L F1.
    Rouge,
    /// BERTScore-style embedding F1 (rescaled).
    BertScore,
    /// Simulated G-Eval.
    GEval,
}

impl MetricKind {
    /// All four metrics in paper order.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Bleu,
        MetricKind::Rouge,
        MetricKind::BertScore,
        MetricKind::GEval,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Bleu => "BLEU",
            MetricKind::Rouge => "ROUGE",
            MetricKind::BertScore => "BERTScore",
            MetricKind::GEval => "G-Eval",
        }
    }
}

/// Scores one answer under one metric. `geval` carries the judge state.
pub fn score(
    kind: MetricKind,
    geval: &GEval,
    question: &str,
    candidate: &str,
    reference: &str,
) -> f64 {
    match kind {
        MetricKind::Bleu => crate::bleu::bleu(candidate, reference),
        MetricKind::Rouge => crate::rouge::rouge(candidate, reference),
        MetricKind::BertScore => crate::bertscore::bertscore(candidate, reference),
        MetricKind::GEval => geval.score(question, candidate, reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_score_identity_high() {
        let g = GEval::new(42);
        let q = "How many prefixes does AS2497 originate?";
        let t = "The number of prefixes originated by AS2497 is 17.";
        for kind in MetricKind::ALL {
            let s = score(kind, &g, q, t, t);
            assert!(s > 0.8, "{} scored identity at {s}", kind.name());
        }
    }

    #[test]
    fn geval_separates_where_bertscore_ceilings() {
        let g = GEval::new(42);
        let q = "How many prefixes does AS2497 originate?";
        let reference = "The number of prefixes originated by AS2497 is 17.";
        let wrong = "The number of prefixes originated by AS2497 is 530.";
        let geval_gap = score(MetricKind::GEval, &g, q, reference, reference)
            - score(MetricKind::GEval, &g, q, wrong, reference);
        let bert_gap = score(MetricKind::BertScore, &g, q, reference, reference)
            - score(MetricKind::BertScore, &g, q, wrong, reference);
        assert!(
            geval_gap > bert_gap + 0.2,
            "geval_gap={geval_gap} bert_gap={bert_gap}"
        );
    }

    #[test]
    fn metric_names() {
        assert_eq!(MetricKind::ALL.len(), 4);
        assert_eq!(MetricKind::GEval.name(), "G-Eval");
    }
}
