//! ROUGE (Lin, 2004): recall-oriented n-gram and longest-common-
//! subsequence overlap. Provides ROUGE-1, ROUGE-2 and ROUGE-L F1 scores.

use iyp_embed::tokenize::words;
use std::collections::HashMap;

/// ROUGE-N F1 between candidate and reference.
pub fn rouge_n(candidate: &str, reference: &str, n: usize) -> f64 {
    let cand = words(candidate);
    let refr = words(reference);
    if cand.len() < n || refr.len() < n {
        return 0.0;
    }
    let mut ref_counts: HashMap<&[String], usize> = HashMap::new();
    for w in refr.windows(n) {
        *ref_counts.entry(w).or_default() += 1;
    }
    let mut overlap = 0usize;
    let mut cand_counts: HashMap<&[String], usize> = HashMap::new();
    for w in cand.windows(n) {
        *cand_counts.entry(w).or_default() += 1;
    }
    for (gram, count) in &cand_counts {
        overlap += (*count).min(ref_counts.get(gram).copied().unwrap_or(0));
    }
    let cand_total = cand.len() + 1 - n;
    let ref_total = refr.len() + 1 - n;
    f1(
        overlap as f64 / cand_total as f64,
        overlap as f64 / ref_total as f64,
    )
}

/// ROUGE-1 F1.
pub fn rouge_1(candidate: &str, reference: &str) -> f64 {
    rouge_n(candidate, reference, 1)
}

/// ROUGE-2 F1.
pub fn rouge_2(candidate: &str, reference: &str) -> f64 {
    rouge_n(candidate, reference, 2)
}

/// ROUGE-L F1: longest common subsequence of words.
pub fn rouge_l(candidate: &str, reference: &str) -> f64 {
    let cand = words(candidate);
    let refr = words(reference);
    if cand.is_empty() || refr.is_empty() {
        return 0.0;
    }
    let lcs = lcs_len(&cand, &refr) as f64;
    f1(lcs / cand.len() as f64, lcs / refr.len() as f64)
}

/// The combined ROUGE score used in the figures: the mean of ROUGE-1,
/// ROUGE-2 and ROUGE-L F1 (a common aggregate when reporting a single
/// ROUGE number).
pub fn rouge(candidate: &str, reference: &str) -> f64 {
    (rouge_1(candidate, reference) + rouge_2(candidate, reference) + rouge_l(candidate, reference))
        / 3.0
}

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_scores_one() {
        let t = "the population share of as2497 in japan is 33.3";
        assert!((rouge_1(t, t) - 1.0).abs() < 1e-9);
        assert!((rouge_2(t, t) - 1.0).abs() < 1e-9);
        assert!((rouge_l(t, t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_scores_zero() {
        assert_eq!(rouge("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn rouge_tolerates_rewording_better_than_bleu() {
        let reference = "The share of Japan's population served by AS2497 is 33.3.";
        let paraphrase = "33.3 — that is the population share AS2497 serves in Japan.";
        let r = rouge(paraphrase, reference);
        let b = crate::bleu::bleu(paraphrase, reference);
        assert!(r > b, "rouge={r} bleu={b}");
    }

    #[test]
    fn lcs_respects_order() {
        // Same bag of words, scrambled: ROUGE-1 stays 1.0, ROUGE-L drops.
        let reference = "a b c d e";
        let scrambled = "e d c b a";
        assert!((rouge_1(scrambled, reference) - 1.0).abs() < 1e-9);
        assert!(rouge_l(scrambled, reference) < 0.5);
    }

    #[test]
    fn short_texts_and_empty() {
        assert_eq!(rouge_2("word", "word"), 0.0); // no bigrams in one word
        assert_eq!(rouge_1("", "x"), 0.0);
        assert_eq!(rouge_l("x", ""), 0.0);
    }

    #[test]
    fn recall_orientation() {
        // A candidate covering more of the reference scores higher ROUGE-1.
        let reference = "one two three four five six";
        assert!(rouge_1("one two three four", reference) > rouge_1("one two", reference));
    }
}
