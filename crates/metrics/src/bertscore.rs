//! BERTScore (Zhang et al., 2019): greedy token-embedding matching.
//!
//! Each candidate token is matched to its most similar reference token in
//! embedding space (precision side), and vice versa (recall side); the F1
//! of the two is the raw score. As in the original paper, raw scores are
//! *baseline-rescaled*: random sentence pairs already score well above
//! zero, so scores are mapped through `(s - baseline) / (1 - baseline)`.
//!
//! Two deliberate properties of this implementation reproduce the ceiling
//! effect the ChatIYP paper observes: hashed character-trigram token
//! embeddings make morphologically-similar tokens match strongly, and the
//! rescaling leaves answers drawn from a narrow template vocabulary
//! compressed near the top of the range.

use iyp_embed::embedder::Embedder;
use iyp_embed::tokenize::words;

/// The baseline used for rescaling. Calibrated on unrelated answer pairs
/// from the IYP answer distribution (see `baseline_calibration` test).
pub const BASELINE: f64 = 0.10;

/// BERTScore F1 (baseline-rescaled) of candidate against reference.
pub fn bertscore(candidate: &str, reference: &str) -> f64 {
    bertscore_with(&Embedder::default(), candidate, reference)
}

/// BERTScore with a caller-supplied embedder.
pub fn bertscore_with(embedder: &Embedder, candidate: &str, reference: &str) -> f64 {
    let cand = words(candidate);
    let refr = words(reference);
    if cand.is_empty() || refr.is_empty() {
        return 0.0;
    }
    let cand_vecs: Vec<_> = cand.iter().map(|t| embedder.embed_token(t)).collect();
    let ref_vecs: Vec<_> = refr.iter().map(|t| embedder.embed_token(t)).collect();

    // Precision: each candidate token greedily matches its best reference.
    let precision: f64 = cand_vecs
        .iter()
        .map(|cv| {
            ref_vecs
                .iter()
                .map(|rv| f64::from(cv.cosine(rv)))
                .fold(f64::MIN, f64::max)
        })
        .sum::<f64>()
        / cand_vecs.len() as f64;
    // Recall: each reference token greedily matches its best candidate.
    let recall: f64 = ref_vecs
        .iter()
        .map(|rv| {
            cand_vecs
                .iter()
                .map(|cv| f64::from(rv.cosine(cv)))
                .fold(f64::MIN, f64::max)
        })
        .sum::<f64>()
        / ref_vecs.len() as f64;

    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ((f1 - BASELINE) / (1.0 - BASELINE)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_scores_one() {
        let t = "the share of japan's population served by as2497 is 33.3";
        assert!((bertscore(t, t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paraphrase_scores_much_higher_than_bleu() {
        let reference = "The share of Japan's population served by AS2497 is 33.3.";
        let paraphrase = "33.3 — that is the population share AS2497 serves in Japan.";
        let bs = bertscore(paraphrase, reference);
        let bl = crate::bleu::bleu(paraphrase, reference);
        assert!(bs > 0.7, "bertscore={bs}");
        assert!(bs > bl + 0.3, "bertscore={bs} bleu={bl}");
    }

    #[test]
    fn ceiling_effect_on_template_answers() {
        // Right and wrong answers drawn from the same template vocabulary
        // are barely separated — the paper's criticism of BERTScore.
        let reference = "The number of prefixes originated by AS2497 is 17.";
        let right = "IYP reports a number of prefixes originated by AS2497 of 17.";
        let wrong = "IYP reports a number of prefixes originated by AS2497 of 530.";
        let s_right = bertscore(right, reference);
        let s_wrong = bertscore(wrong, reference);
        assert!(s_right > 0.7);
        assert!(s_wrong > 0.6, "wrong answer not ceilinged: {s_wrong}");
        assert!(
            s_right - s_wrong < 0.2,
            "separation unexpectedly large: {s_right} vs {s_wrong}"
        );
    }

    #[test]
    fn unrelated_texts_score_low_after_rescaling() {
        let s = bertscore(
            "completely different topic entirely",
            "the tranco rank of shop42.com equals nine",
        );
        assert!(s < 0.45, "unrelated score too high: {s}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(bertscore("", "x"), 0.0);
        assert_eq!(bertscore("x", ""), 0.0);
    }

    #[test]
    fn baseline_calibration() {
        // Mean raw-ish score of unrelated answer pairs should sit near the
        // baseline, i.e. rescaled scores should hug zero-to-low.
        let answers = [
            "The name of AS2497 is IIJ.",
            "The Tranco rank of mail3.net is 42.",
            "There are 12 matching records: JPIX, Frankfurt-IX.",
            "The registration country of AS15169 is US.",
        ];
        let mut total = 0.0;
        let mut n = 0;
        for (i, a) in answers.iter().enumerate() {
            for b in answers.iter().skip(i + 1) {
                total += bertscore(a, b);
                n += 1;
            }
        }
        let mean = total / n as f64;
        assert!(mean < 0.6, "unrelated-pair mean too high: {mean}");
    }
}
