//! The in-memory property-graph store.
//!
//! Nodes carry one or more labels and a property map; relationships are
//! directed, typed edges with their own properties. Adjacency is stored on
//! each node (outgoing and incoming relationship lists) so pattern expansion
//! is O(degree). Label membership and any explicitly created property
//! indexes are maintained incrementally on mutation.
//!
//! Storage is paged and copy-on-write (see [`crate::page`]): node and
//! relationship records live in `Arc`-shared fixed-size pages, label
//! membership in `Arc`-shared shards, index entries in `Arc`-shared
//! partitions. `Graph::clone` is therefore a pointer-copy of the page
//! tables — microseconds, independent of graph size — and mutating a
//! clone path-copies only the pages the mutation touches.

use crate::index::{IndexSet, OrderedIndex};
use crate::intern::{Interner, Sym};
use crate::page::{LabelSet, PagedVec};
use crate::props::Props;
use crate::stats::MemoryStats;
use crate::value::{Value, ValueKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node. Stable for the lifetime of the graph; never reused
/// after deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Identifier of a relationship. Stable; never reused after deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}
impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Traversal direction relative to a start node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Follow relationships where the start node is the source.
    Outgoing,
    /// Follow relationships where the start node is the target.
    Incoming,
    /// Follow relationships in either orientation.
    Both,
}

impl Direction {
    /// The opposite direction (`Both` is its own opposite).
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
            Direction::Both => Direction::Both,
        }
    }
}

/// Stored node record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The node's id.
    pub id: NodeId,
    /// Interned label symbols, sorted.
    pub labels: Vec<Sym>,
    /// Node properties.
    pub props: Props,
    pub(crate) out: Vec<RelId>,
    pub(crate) inc: Vec<RelId>,
}

/// Stored relationship record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelRecord {
    /// The relationship's id.
    pub id: RelId,
    /// Interned relationship-type symbol.
    pub ty: Sym,
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Relationship properties.
    pub props: Props,
}

impl RelRecord {
    /// The endpoint that is not `node`. Returns `dst` for self-loops.
    pub fn other(&self, node: NodeId) -> NodeId {
        if self.src == node {
            self.dst
        } else {
            self.src
        }
    }
}

/// Errors raised by graph mutations and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced node does not exist (deleted or never created).
    NodeNotFound(NodeId),
    /// The referenced relationship does not exist.
    RelNotFound(RelId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(id) => write!(f, "node {id} not found"),
            GraphError::RelNotFound(id) => write!(f, "relationship {id} not found"),
        }
    }
}
impl std::error::Error for GraphError {}

/// The property-graph store.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Graph {
    nodes: PagedVec<NodeRecord>,
    rels: PagedVec<RelRecord>,
    labels: Interner,
    rel_types: Interner,
    /// label symbol → sharded sorted set of node ids carrying it.
    label_members: Vec<LabelSet>,
    indexes: IndexSet,
    live_nodes: usize,
    live_rels: usize,
    /// Monotonic write epoch: bumped by every successful mutation, so
    /// caches keyed on query text can detect that previously recorded
    /// results may be stale (see `chatiyp-core`'s query cache).
    ///
    /// Persisted by snapshots (`serde(default)` keeps pre-epoch snapshot
    /// files loadable at epoch 0) so a save → load round-trip cannot
    /// rewind the counter a cache already observed.
    #[serde(default)]
    epoch: u64,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// The current write epoch. Strictly increases across successful
    /// mutations (node/relationship/property/label/index changes) and
    /// never changes on reads, so `epoch() == earlier_epoch` proves any
    /// result computed at `earlier_epoch` is still valid.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Raises the epoch to at least `min` (no-op when already there).
    ///
    /// Used by [`crate::store::GraphStore`] when swapping in a graph
    /// whose epoch is not ahead of the snapshot it replaces — e.g. one
    /// reloaded from an old snapshot file — so epoch-keyed cache entries
    /// recorded against the previous snapshot can never validate against
    /// the new one.
    pub fn raise_epoch_to(&mut self, min: u64) {
        if self.epoch < min {
            self.epoch = min;
        }
    }

    /// Adds a node with the given labels and properties, returning its id.
    pub fn add_node<I, S>(&mut self, labels: I, props: Props) -> NodeId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let id = NodeId(self.nodes.len() as u64);
        let mut syms: Vec<Sym> = labels
            .into_iter()
            .map(|l| self.intern_label(l.as_ref()))
            .collect();
        syms.sort_unstable();
        syms.dedup();
        for &sym in &syms {
            self.label_members[sym.0 as usize].insert(id);
        }
        self.indexes.on_node_added(id, &syms, &props);
        self.nodes.push(NodeRecord {
            id,
            labels: syms,
            props,
            out: Vec::new(),
            inc: Vec::new(),
        });
        self.live_nodes += 1;
        self.bump_epoch();
        id
    }

    /// Adds a directed relationship `src -[ty]-> dst`.
    pub fn add_rel(
        &mut self,
        src: NodeId,
        ty: &str,
        dst: NodeId,
        props: Props,
    ) -> Result<RelId, GraphError> {
        if self.node(src).is_none() {
            return Err(GraphError::NodeNotFound(src));
        }
        if self.node(dst).is_none() {
            return Err(GraphError::NodeNotFound(dst));
        }
        let ty = self.rel_types.intern(ty);
        let id = RelId(self.rels.len() as u64);
        self.rels.push(RelRecord {
            id,
            ty,
            src,
            dst,
            props,
        });
        self.node_mut_raw(src).out.push(id);
        self.node_mut_raw(dst).inc.push(id);
        self.live_rels += 1;
        self.bump_epoch();
        Ok(id)
    }

    /// Removes a relationship.
    pub fn remove_rel(&mut self, id: RelId) -> Result<RelRecord, GraphError> {
        let rec = self
            .rels
            .take(id.0 as usize)
            .ok_or(GraphError::RelNotFound(id))?;
        self.node_mut_raw(rec.src).out.retain(|&r| r != id);
        self.node_mut_raw(rec.dst).inc.retain(|&r| r != id);
        self.live_rels -= 1;
        self.bump_epoch();
        Ok(rec)
    }

    /// Detach-deletes a node: removes all its relationships, then the node.
    pub fn remove_node(&mut self, id: NodeId) -> Result<NodeRecord, GraphError> {
        let rels: Vec<RelId> = {
            let rec = self.node(id).ok_or(GraphError::NodeNotFound(id))?;
            rec.out.iter().chain(rec.inc.iter()).copied().collect()
        };
        for r in rels {
            // A self-loop appears in both lists; the second remove is a no-op.
            let _ = self.remove_rel(r);
        }
        let rec = self.nodes.take(id.0 as usize).expect("checked above");
        for &sym in &rec.labels {
            self.label_members[sym.0 as usize].remove(id);
        }
        self.indexes.on_node_removed(id, &rec.labels, &rec.props);
        self.live_nodes -= 1;
        self.bump_epoch();
        Ok(rec)
    }

    /// Sets (or with `Value::Null`, clears) a node property, keeping
    /// indexes synchronized.
    pub fn set_node_prop(
        &mut self,
        id: NodeId,
        key: &str,
        value: impl Into<Value>,
    ) -> Result<(), GraphError> {
        let value = value.into();
        let (labels, old) = {
            let rec = self.node(id).ok_or(GraphError::NodeNotFound(id))?;
            (rec.labels.clone(), rec.props.get(key).cloned())
        };
        self.indexes
            .on_prop_changed(id, &labels, key, old.as_ref(), &value);
        self.node_mut_raw(id).props.set(key, value);
        self.bump_epoch();
        Ok(())
    }

    /// Sets a relationship property.
    pub fn set_rel_prop(
        &mut self,
        id: RelId,
        key: &str,
        value: impl Into<Value>,
    ) -> Result<(), GraphError> {
        let rec = self
            .rels
            .get_mut(id.0 as usize)
            .ok_or(GraphError::RelNotFound(id))?;
        rec.props.set(key, value);
        self.bump_epoch();
        Ok(())
    }

    /// Adds a label to an existing node.
    pub fn add_label(&mut self, id: NodeId, label: &str) -> Result<(), GraphError> {
        if self.node(id).is_none() {
            return Err(GraphError::NodeNotFound(id));
        }
        let sym = self.intern_label(label);
        let rec = self.node_mut_raw(id);
        if let Err(pos) = rec.labels.binary_search(&sym) {
            rec.labels.insert(pos, sym);
            let props = rec.props.clone();
            self.label_members[sym.0 as usize].insert(id);
            self.indexes.on_node_added(id, &[sym], &props);
            self.bump_epoch();
        }
        Ok(())
    }

    fn intern_label(&mut self, label: &str) -> Sym {
        let sym = self.labels.intern(label);
        while self.label_members.len() <= sym.0 as usize {
            self.label_members.push(LabelSet::new());
        }
        sym
    }

    fn node_mut_raw(&mut self, id: NodeId) -> &mut NodeRecord {
        self.nodes
            .get_mut(id.0 as usize)
            .expect("caller verified node exists")
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Returns the node record, or `None` if deleted/nonexistent.
    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.nodes.get(id.0 as usize)
    }

    /// Returns the relationship record.
    pub fn rel(&self, id: RelId) -> Option<&RelRecord> {
        self.rels.get(id.0 as usize)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live relationships.
    pub fn rel_count(&self) -> usize {
        self.live_rels
    }

    /// Resolves a label symbol to its name.
    pub fn label_name(&self, sym: Sym) -> &str {
        self.labels.resolve(sym)
    }

    /// Resolves a relationship-type symbol to its name.
    pub fn rel_type_name(&self, sym: Sym) -> &str {
        self.rel_types.resolve(sym)
    }

    /// Looks up a label symbol by name without interning.
    pub fn label_sym(&self, name: &str) -> Option<Sym> {
        self.labels.get(name)
    }

    /// Looks up a relationship-type symbol by name without interning.
    pub fn rel_type_sym(&self, name: &str) -> Option<Sym> {
        self.rel_types.get(name)
    }

    /// The label names of a node.
    pub fn node_labels(&self, id: NodeId) -> Vec<&str> {
        self.node(id)
            .map(|n| n.labels.iter().map(|&s| self.labels.resolve(s)).collect())
            .unwrap_or_default()
    }

    /// Does the node carry `label`?
    pub fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        match (self.node(id), self.labels.get(label)) {
            (Some(rec), Some(sym)) => rec.labels.binary_search(&sym).is_ok(),
            _ => false,
        }
    }

    /// Does the node carry the label with pre-resolved symbol `sym`?
    ///
    /// Symbol-level variant of [`Graph::node_has_label`] for compiled
    /// execution paths that resolve label names once at lowering time.
    pub fn node_has_label_sym(&self, id: NodeId, sym: Sym) -> bool {
        match self.node(id) {
            Some(rec) => rec.labels.binary_search(&sym).is_ok(),
            None => false,
        }
    }

    /// All live node ids, ascending.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        crate::dbhits::add(1 + self.live_nodes as u64);
        self.nodes.iter().filter_map(|n| n.map(|r| r.id))
    }

    /// All live relationship ids, ascending.
    pub fn all_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.iter().filter_map(|r| r.map(|r| r.id))
    }

    /// Node ids carrying `label`, ascending. Empty if the label is unknown.
    pub fn nodes_with_label<'a>(&'a self, label: &str) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        match self.labels.get(label) {
            Some(sym) => {
                let members = &self.label_members[sym.0 as usize];
                crate::dbhits::add(1 + members.len() as u64);
                Box::new(members.iter())
            }
            None => {
                crate::dbhits::add(1);
                Box::new(std::iter::empty())
            }
        }
    }

    /// Number of nodes carrying `label`.
    pub fn label_count(&self, label: &str) -> usize {
        self.labels
            .get(label)
            .map(|sym| self.label_members[sym.0 as usize].len())
            .unwrap_or(0)
    }

    /// All known label names.
    pub fn all_labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(|(_, n)| n)
    }

    /// All known relationship-type names.
    pub fn all_rel_types(&self) -> impl Iterator<Item = &str> {
        self.rel_types.iter().map(|(_, n)| n)
    }

    /// Expands from `node` in `dir`, optionally restricted to a set of
    /// relationship types, yielding `(rel, neighbor)` pairs.
    ///
    /// `types` of `None` means "any type". Unknown type names simply match
    /// nothing.
    pub fn neighbors(
        &self,
        node: NodeId,
        dir: Direction,
        types: Option<&[&str]>,
    ) -> Vec<(RelId, NodeId)> {
        let type_syms: Option<Vec<Sym>> =
            types.map(|ts| ts.iter().filter_map(|t| self.rel_types.get(t)).collect());
        let mut out = Vec::new();
        self.neighbors_into(node, dir, type_syms.as_deref(), &mut out);
        out
    }

    /// Allocation-free [`Graph::neighbors`]: clears `out` and appends the
    /// `(rel, neighbor)` pairs, so callers can reuse one scratch buffer
    /// across many expansions. `types` is pre-resolved to symbols (see
    /// [`Graph::rel_type_sym`]); `None` means "any type", while an empty
    /// slice — the lowering of a type list whose names are all unknown —
    /// matches nothing.
    ///
    /// Charges the same db hits as [`Graph::neighbors`]: one for the
    /// adjacency access plus one per pair appended.
    pub fn neighbors_into(
        &self,
        node: NodeId,
        dir: Direction,
        types: Option<&[Sym]>,
        out: &mut Vec<(RelId, NodeId)>,
    ) {
        out.clear();
        let Some(rec) = self.node(node) else {
            return;
        };
        // `skip_loops` dedups self-loops, which sit in both adjacency
        // lists, without materializing intermediate filtered lists.
        let mut push = |rel_ids: &[RelId], want_src: bool, skip_loops: bool| {
            for &rid in rel_ids {
                let r = self.rel(rid).expect("adjacency lists only hold live rels");
                if skip_loops && r.src == r.dst {
                    continue;
                }
                if let Some(syms) = types {
                    if !syms.contains(&r.ty) {
                        continue;
                    }
                }
                let nbr = if want_src { r.src } else { r.dst };
                out.push((rid, nbr));
            }
        };
        match dir {
            Direction::Outgoing => push(&rec.out, false, false),
            Direction::Incoming => push(&rec.inc, true, false),
            Direction::Both => {
                push(&rec.out, false, false);
                push(&rec.inc, true, true);
            }
        }
        crate::dbhits::add(1 + out.len() as u64);
    }

    /// Degree of a node in the given direction (any relationship type).
    pub fn degree(&self, node: NodeId, dir: Direction) -> usize {
        match self.node(node) {
            None => 0,
            Some(rec) => match dir {
                Direction::Outgoing => rec.out.len(),
                Direction::Incoming => rec.inc.len(),
                Direction::Both => {
                    let loops = rec
                        .out
                        .iter()
                        .filter(|&&rid| self.rel(rid).map(|r| r.src == r.dst).unwrap_or(false))
                        .count();
                    rec.out.len() + rec.inc.len() - loops
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// Creates (and backfills) a hash index on `(label, key)`.
    /// Idempotent.
    pub fn create_index(&mut self, label: &str, key: &str) {
        let sym = self.intern_label(label);
        let members: Vec<NodeId> = self.label_members[sym.0 as usize].iter().collect();
        let entries: Vec<(NodeId, ValueKey)> = members
            .iter()
            .filter_map(|&id| {
                self.node(id)
                    .and_then(|n| n.props.get(key).map(|v| (id, ValueKey::of(v))))
            })
            .collect();
        self.indexes.create(sym, key, entries.into_iter());
        // Index creation doesn't change query results, but it can change
        // plans; bumping keeps cache semantics conservative and simple.
        self.bump_epoch();
    }

    /// Exact-match index lookup. Returns `None` when no index exists on
    /// `(label, key)` — the planner falls back to a label scan.
    pub fn index_lookup(&self, label: &str, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        let sym = self.labels.get(label)?;
        let hits = self.indexes.lookup(sym, key, &ValueKey::of(value));
        if let Some(ids) = &hits {
            crate::dbhits::add(1 + ids.len() as u64);
        }
        hits
    }

    /// Range scan over an ordered view of the index (built lazily).
    pub fn index_range(
        &self,
        label: &str,
        key: &str,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Option<Vec<NodeId>> {
        let sym = self.labels.get(label)?;
        let hits = self.indexes.range(
            sym,
            key,
            lo.map(|(v, inc)| (ValueKey::of(v), inc)),
            hi.map(|(v, inc)| (ValueKey::of(v), inc)),
        );
        if let Some(ids) = &hits {
            crate::dbhits::add(1 + ids.len() as u64);
        }
        hits
    }

    /// Does an index exist on `(label, key)`?
    pub fn has_index(&self, label: &str, key: &str) -> bool {
        self.labels
            .get(label)
            .map(|sym| self.indexes.exists(sym, key))
            .unwrap_or(false)
    }

    /// Lists `(label, key)` pairs with indexes.
    pub fn list_indexes(&self) -> Vec<(String, String)> {
        self.indexes
            .list()
            .into_iter()
            .map(|(sym, key)| (self.labels.resolve(sym).to_string(), key))
            .collect()
    }

    /// Builds an ordered index usable for fast range queries.
    pub fn ordered_index(&self, label: &str, key: &str) -> Option<OrderedIndex> {
        let sym = self.labels.get(label)?;
        self.indexes.ordered(sym, key)
    }

    /// Rebuilds transient lookup tables after deserialization.
    pub fn after_deserialize(&mut self) {
        self.labels.rebuild_lookup();
        self.rel_types.rebuild_lookup();
    }

    // ------------------------------------------------------------------
    // Copy-on-write accounting
    // ------------------------------------------------------------------

    /// Memory accounting for this snapshot's paged storage: approximate
    /// retained heap bytes plus shared-vs-owned counts for record pages,
    /// label shards, and index partitions. "Shared" structures are held
    /// jointly with other live `Graph` clones (older snapshots, in-flight
    /// ingest copies); "owned" ones belong to this graph alone.
    pub fn memory_stats(&self) -> MemoryStats {
        let node_bytes = self.nodes.heap_bytes(|rec| {
            rec.labels.capacity() * std::mem::size_of::<Sym>()
                + rec.out.capacity() * std::mem::size_of::<RelId>()
                + rec.inc.capacity() * std::mem::size_of::<RelId>()
                + props_heap_bytes(&rec.props)
        });
        let rel_bytes = self.rels.heap_bytes(|rec| props_heap_bytes(&rec.props));
        let label_bytes: usize = self.label_members.iter().map(LabelSet::heap_bytes).sum();
        MemoryStats {
            retained_bytes: node_bytes + rel_bytes + label_bytes + self.indexes.heap_bytes(),
            node_pages: self.nodes.page_count(),
            node_pages_shared: self.nodes.shared_page_count(),
            rel_pages: self.rels.page_count(),
            rel_pages_shared: self.rels.shared_page_count(),
            label_shards: self.label_members.iter().map(LabelSet::shard_count).sum(),
            label_shards_shared: self
                .label_members
                .iter()
                .map(LabelSet::shared_shard_count)
                .sum(),
            index_partitions: self.indexes.partition_count(),
            index_partitions_shared: self.indexes.shared_partition_count(),
        }
    }

    /// A clone with every page, shard, and partition privately owned —
    /// the allocation profile of the pre-paged store's `Graph::clone`.
    /// Exists for benches (`bin/cow_ingest`) to measure what path-copying
    /// saves; production code paths never call it.
    pub fn deep_clone(&self) -> Graph {
        let mut g = self.clone();
        g.nodes.make_owned();
        g.rels.make_owned();
        for set in &mut g.label_members {
            set.make_owned();
        }
        g.indexes.make_owned();
        g
    }
}

/// Approximate heap bytes owned by a property map.
fn props_heap_bytes(props: &Props) -> usize {
    props
        .iter()
        .map(|(k, v)| k.len() + value_heap_bytes(v) + 48)
        .sum()
}

fn value_heap_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len(),
        Value::List(items) => {
            items.capacity() * std::mem::size_of::<Value>()
                + items.iter().map(value_heap_bytes).sum::<usize>()
        }
        Value::Map(m) => m
            .iter()
            .map(|(k, v)| k.len() + value_heap_bytes(v) + 48)
            .sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let b = g.add_node(["AS"], props!("asn" => 15169i64, "name" => "Google"));
        let c = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();
        g.add_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn add_and_lookup() {
        let (g, a, _, c) = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.rel_count(), 2);
        assert_eq!(g.node(a).unwrap().props.get("asn"), Some(&Value::Int(2497)));
        assert!(g.node_has_label(c, "Country"));
        assert!(!g.node_has_label(c, "AS"));
    }

    #[test]
    fn label_scan() {
        let (g, a, b, _) = tiny();
        let ases: Vec<NodeId> = g.nodes_with_label("AS").collect();
        assert_eq!(ases, vec![a, b]);
        assert_eq!(g.label_count("Country"), 1);
        assert_eq!(g.nodes_with_label("Nope").count(), 0);
    }

    #[test]
    fn neighbors_directional() {
        let (g, a, b, c) = tiny();
        let out: Vec<NodeId> = g
            .neighbors(a, Direction::Outgoing, None)
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(out, vec![c, b]);
        let inc: Vec<NodeId> = g
            .neighbors(c, Direction::Incoming, None)
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(inc, vec![a]);
        let typed = g.neighbors(a, Direction::Outgoing, Some(&["PEERS_WITH"]));
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].1, b);
    }

    #[test]
    fn both_direction_no_selfloop_double_count() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], Props::new());
        g.add_rel(a, "PEERS_WITH", a, Props::new()).unwrap();
        assert_eq!(g.neighbors(a, Direction::Both, None).len(), 1);
        assert_eq!(g.degree(a, Direction::Both), 1);
    }

    #[test]
    fn selfloop_mixed_with_plain_rels_both_direction() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], Props::new());
        let b = g.add_node(["AS"], Props::new());
        let r_out = g.add_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        let r_loop = g.add_rel(a, "PEERS_WITH", a, Props::new()).unwrap();
        let r_in = g.add_rel(b, "DEPENDS_ON", a, Props::new()).unwrap();
        let both = g.neighbors(a, Direction::Both, None);
        // Self-loop reported exactly once; out-list first, then incoming.
        assert_eq!(both, vec![(r_out, b), (r_loop, a), (r_in, b)]);
        let typed = g.neighbors(a, Direction::Both, Some(&["PEERS_WITH"]));
        assert_eq!(typed, vec![(r_out, b), (r_loop, a)]);
    }

    #[test]
    fn neighbors_into_matches_neighbors_and_dbhits() {
        let (mut g, a, b, c) = tiny();
        g.add_rel(b, "PEERS_WITH", a, Props::new()).unwrap();
        g.add_rel(c, "COUNTRY", c, Props::new()).unwrap();
        let peers_sym = g.rel_type_sym("PEERS_WITH").unwrap();
        let mut buf = Vec::new();
        for node in [a, b, c, NodeId(99)] {
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                for (names, syms) in [
                    (None, None),
                    (Some(vec!["PEERS_WITH"]), Some(vec![peers_sym])),
                    (Some(vec!["NOPE"]), Some(Vec::new())),
                ] {
                    let h0 = crate::dbhits::current();
                    let via_vec = g.neighbors(node, dir, names.as_deref());
                    let h_vec = crate::dbhits::current() - h0;
                    buf.push((RelId(0), NodeId(0))); // must be cleared
                    let h1 = crate::dbhits::current();
                    g.neighbors_into(node, dir, syms.as_deref(), &mut buf);
                    let h_into = crate::dbhits::current() - h1;
                    assert_eq!(via_vec, buf);
                    assert_eq!(h_vec, h_into);
                }
            }
        }
    }

    #[test]
    fn node_has_label_sym_matches_name_lookup() {
        let (g, a, _, c) = tiny();
        let as_sym = g.label_sym("AS").unwrap();
        let country_sym = g.label_sym("Country").unwrap();
        assert!(g.node_has_label_sym(a, as_sym));
        assert!(!g.node_has_label_sym(a, country_sym));
        assert!(g.node_has_label_sym(c, country_sym));
        assert!(!g.node_has_label_sym(NodeId(99), as_sym));
    }

    #[test]
    fn detach_delete() {
        let (mut g, a, b, _) = tiny();
        g.remove_node(a).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 0);
        assert!(g.node(a).is_none());
        assert_eq!(g.neighbors(b, Direction::Both, None).len(), 0);
        assert_eq!(g.nodes_with_label("AS").count(), 1);
    }

    #[test]
    fn rel_to_missing_node_fails() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], Props::new());
        let err = g.add_rel(a, "X", NodeId(99), Props::new()).unwrap_err();
        assert_eq!(err, GraphError::NodeNotFound(NodeId(99)));
    }

    #[test]
    fn index_lookup_and_maintenance() {
        let (mut g, a, _, _) = tiny();
        assert!(g.index_lookup("AS", "asn", &Value::Int(2497)).is_none());
        g.create_index("AS", "asn");
        assert_eq!(
            g.index_lookup("AS", "asn", &Value::Int(2497)),
            Some(vec![a])
        );
        // New node is picked up.
        let d = g.add_node(["AS"], props!("asn" => 7018i64));
        assert_eq!(
            g.index_lookup("AS", "asn", &Value::Int(7018)),
            Some(vec![d])
        );
        // Property update moves the entry.
        g.set_node_prop(d, "asn", 7019i64).unwrap();
        assert_eq!(g.index_lookup("AS", "asn", &Value::Int(7018)), Some(vec![]));
        assert_eq!(
            g.index_lookup("AS", "asn", &Value::Int(7019)),
            Some(vec![d])
        );
        // Deletion removes the entry.
        g.remove_node(d).unwrap();
        assert_eq!(g.index_lookup("AS", "asn", &Value::Int(7019)), Some(vec![]));
    }

    #[test]
    fn index_range_scan() {
        let mut g = Graph::new();
        for asn in [10i64, 20, 30, 40] {
            g.add_node(["AS"], props!("asn" => asn));
        }
        g.create_index("AS", "asn");
        let ids = g
            .index_range(
                "AS",
                "asn",
                Some((&Value::Int(15), true)),
                Some((&Value::Int(35), true)),
            )
            .unwrap();
        let asns: Vec<i64> = ids
            .iter()
            .map(|&id| {
                g.node(id)
                    .unwrap()
                    .props
                    .get("asn")
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert_eq!(asns, vec![20, 30]);
    }

    #[test]
    fn epoch_bumps_on_mutations_only() {
        let mut g = Graph::new();
        let e0 = g.epoch();
        let a = g.add_node(["AS"], props!("asn" => 1i64));
        assert!(g.epoch() > e0);
        let e1 = g.epoch();
        let b = g.add_node(["AS"], Props::new());
        let r = g.add_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.set_node_prop(a, "asn", 2i64).unwrap();
        g.set_rel_prop(r, "since", 2020i64).unwrap();
        g.add_label(a, "Tier1").unwrap();
        assert!(g.epoch() > e1);

        // Idempotent label re-add and failed mutations leave it alone.
        let e2 = g.epoch();
        g.add_label(a, "Tier1").unwrap();
        assert!(g.add_rel(a, "X", NodeId(99), Props::new()).is_err());
        assert!(g.set_node_prop(NodeId(99), "x", 1i64).is_err());
        assert_eq!(g.epoch(), e2);

        // Reads leave it alone.
        let _ = g.node(a);
        let _ = g.neighbors(a, Direction::Both, None);
        let _ = g.node_count();
        assert_eq!(g.epoch(), e2);

        // Removals bump.
        g.remove_rel(r).unwrap();
        assert!(g.epoch() > e2);
        let e3 = g.epoch();
        g.remove_node(b).unwrap();
        assert!(g.epoch() > e3);
    }

    #[test]
    fn add_label_later() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], Props::new());
        g.add_label(a, "Tier1").unwrap();
        assert!(g.node_has_label(a, "Tier1"));
        assert_eq!(g.nodes_with_label("Tier1").count(), 1);
        // Idempotent.
        g.add_label(a, "Tier1").unwrap();
        assert_eq!(g.node(a).unwrap().labels.len(), 2);
    }

    #[test]
    fn clone_is_shallow_and_isolated() {
        let mut g = Graph::new();
        for i in 0..600i64 {
            g.add_node(["AS"], props!("asn" => i));
        }
        g.create_index("AS", "asn");
        let snap = g.clone();
        let m = g.memory_stats();
        assert_eq!(m.node_pages_shared, m.node_pages, "clone was not shallow");

        // Mutations on the original are invisible to the clone.
        let before = snap.node_count();
        g.add_node(["AS"], props!("asn" => 9999i64));
        g.set_node_prop(NodeId(0), "asn", -1i64).unwrap();
        g.remove_node(NodeId(1)).unwrap();
        assert_eq!(snap.node_count(), before);
        assert_eq!(
            snap.node(NodeId(0)).unwrap().props.get("asn"),
            Some(&Value::Int(0))
        );
        assert!(snap.node(NodeId(1)).is_some());
        assert_eq!(
            snap.index_lookup("AS", "asn", &Value::Int(1)),
            Some(vec![NodeId(1)])
        );
        // Only the touched pages were un-shared.
        let m2 = g.memory_stats();
        assert!(m2.node_pages_shared >= m2.node_pages - 2);
    }

    #[test]
    fn deep_clone_owns_everything() {
        let mut g = Graph::new();
        for i in 0..300i64 {
            g.add_node(["AS"], props!("asn" => i));
        }
        g.create_index("AS", "asn");
        let deep = g.deep_clone();
        let m = deep.memory_stats();
        assert_eq!(m.node_pages_shared, 0);
        assert_eq!(m.index_partitions_shared, 0);
        assert_eq!(m.label_shards_shared, 0);
        // Same contents, fully private storage.
        assert_eq!(deep.node_count(), g.node_count());
    }
}
