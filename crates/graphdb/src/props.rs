//! Property containers attached to nodes and relationships.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordered map of property key → value.
///
/// Keys are stored sorted so snapshots and debug output are deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Props(BTreeMap<String, Value>);

impl Props {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the value for `key`, or `None` if absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// Returns the value for `key`, or `Value::Null` if absent — Cypher's
    /// missing-property semantics.
    pub fn get_or_null(&self, key: &str) -> Value {
        self.0.get(key).cloned().unwrap_or(Value::Null)
    }

    /// Sets a property. Setting `Value::Null` removes the key, matching
    /// Cypher's `SET n.k = null`.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let value = value.into();
        if value.is_null() {
            self.0.remove(&key.into());
        } else {
            self.0.insert(key.into(), value);
        }
    }

    /// Removes a property, returning the old value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(key)
    }

    /// Does the map contain `key`?
    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no properties.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Property keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Converts into a `Value::Map` (used by `RETURN n` projections and
    /// the `properties()` function).
    pub fn to_value(&self) -> Value {
        Value::Map(self.0.clone())
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Props {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut p = Props::new();
        for (k, v) in iter {
            p.set(k, v);
        }
        p
    }
}

/// Convenience macro for building property maps in tests and generators.
#[macro_export]
macro_rules! props {
    () => { $crate::props::Props::new() };
    ($($k:expr => $v:expr),+ $(,)?) => {{
        let mut p = $crate::props::Props::new();
        $( p.set($k, $v); )+
        p
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_property_reads_as_null() {
        let p = Props::new();
        assert!(p.get("x").is_none());
        assert!(p.get_or_null("x").is_null());
    }

    #[test]
    fn setting_null_removes() {
        let mut p = props!("a" => 1i64, "b" => "two");
        assert_eq!(p.len(), 2);
        p.set("a", Value::Null);
        assert!(!p.contains("a"));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let p = props!("z" => 1i64, "a" => 2i64, "m" => 3i64);
        let keys: Vec<_> = p.keys().collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn to_value_roundtrip() {
        let p = props!("asn" => 2497i64, "name" => "IIJ");
        match p.to_value() {
            Value::Map(m) => {
                assert_eq!(m["asn"], Value::Int(2497));
                assert_eq!(m["name"], Value::from("IIJ"));
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
