//! Write-ahead log of [`DeltaBatch`] records: the durability substrate
//! for live ingest.
//!
//! A [`Wal`] owns a directory of append-only **segment files**. Every
//! published batch is appended as one **frame** *before* the in-memory
//! swap, so a crash after the append can always be replayed and a crash
//! before it loses nothing that was ever acknowledged.
//!
//! ## Frame format
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────┐
//! │ len: u32   │ crc: u32   │ payload: len bytes│
//! │ (little-   │ (CRC-32/   │ JSON of WalRecord │
//! │  endian)   │  IEEE of   │ {version, batch}  │
//! │            │  payload)  │                   │
//! └────────────┴────────────┴───────────────────┘
//! ```
//!
//! Record versions are strictly increasing across the whole log — they
//! are the store's publish versions, so replay is idempotent: a record
//! at or below the recovered snapshot's version is skipped.
//!
//! ## Segments and rotation
//!
//! Segment files are named `wal-<first_version:020>.log` and rotate when
//! the active segment would exceed [`WalConfig::segment_max_bytes`].
//! Checkpointing calls [`Wal::truncate_below`], which deletes every
//! segment whose records are all covered by the checkpointed snapshot.
//!
//! ## Recovery semantics
//!
//! [`Wal::open`] scans every segment front to back:
//!
//! * a **torn final frame** (truncated header or payload at the tail of
//!   the *last* segment — the signature of a crash mid-append) is
//!   tolerated: the file is truncated back to the last good frame and
//!   the damage is reported in [`OpenedWal::torn_tail`];
//! * a **CRC-corrupt or short interior frame** (anywhere else) means the
//!   log can't be trusted and open refuses with [`WalError::Corrupt`] —
//!   silently skipping a mid-log record would replay a different history
//!   than the one that was acknowledged.

use crate::delta::DeltaBatch;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Maximum payload length accepted when reading a frame. A length word
/// above this is treated as corruption rather than an allocation request.
const MAX_FRAME_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Frame header size: `len: u32` + `crc: u32`.
const FRAME_HEADER: usize = 8;

/// When to `fsync` the active segment after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append — no acknowledged batch can be lost to a
    /// power failure, at the cost of one fsync per ingest.
    Always,
    /// Sync after every `n` appends (and on segment rotation). A crash
    /// can lose up to `n - 1` acknowledged batches to a *power* failure;
    /// a process crash alone loses nothing (the OS holds the pages).
    EveryN(u32),
    /// Never sync; the OS flushes on its own schedule. Fastest, weakest.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `off`, `every_n` (defaults to
    /// every 8 appends), or `every_n:<n>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            "every_n" => Ok(FsyncPolicy::EveryN(8)),
            other => match other.strip_prefix("every_n:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                    _ => Err(format!(
                        "invalid fsync interval `{n}` (want a positive integer)"
                    )),
                },
                None => Err(format!(
                    "unknown fsync policy `{other}` (want always, every_n[:<n>], or off)"
                )),
            },
        }
    }

    /// The CLI spelling of this policy.
    pub fn as_str(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every_n:{n}"),
            FsyncPolicy::Off => "off".to_string(),
        }
    }
}

/// Tunables for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_max_bytes: u64,
    /// When to fsync after appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// One logged ingest: the publish version the batch produced and the
/// batch itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// The store version this batch published (strictly increasing).
    pub version: u64,
    /// The mutation batch, exactly as applied.
    pub batch: DeltaBatch,
}

/// Errors raised by the WAL.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A frame failed its CRC or structural checks somewhere replay
    /// cannot tolerate (anywhere but the tail of the last segment).
    Corrupt {
        /// The segment file holding the bad frame.
        path: PathBuf,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A record could not be serialized or deserialized.
    Format(String),
    /// An append's version did not advance past the last logged record.
    VersionOrder {
        /// The highest version already in the log.
        last: u64,
        /// The offending append's version.
        got: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "wal segment {} corrupt at offset {offset}: {detail}",
                path.display()
            ),
            WalError::Format(e) => write!(f, "wal record format error: {e}"),
            WalError::VersionOrder { last, got } => write!(
                f,
                "wal append version {got} does not advance past last logged version {last}"
            ),
        }
    }
}
impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A torn final frame found (and truncated away) during [`Wal::open`].
#[derive(Debug, Clone)]
pub struct TornTail {
    /// The segment that carried the torn frame.
    pub path: PathBuf,
    /// Bytes dropped from its end.
    pub dropped_bytes: u64,
}

/// What one [`Wal::append`] did.
#[derive(Debug, Clone)]
pub struct AppendInfo {
    /// Bytes this frame occupies on disk (header + payload).
    pub bytes: u64,
    /// Time to encode and write the frame (excluding fsync).
    pub append: Duration,
    /// Time spent in fsync, if this append synced.
    pub fsync: Option<Duration>,
    /// Whether the append rotated to a new segment first.
    pub rotated: bool,
}

/// Point-in-time WAL shape, surfaced through `/stats`.
#[derive(Debug, Clone, Copy)]
pub struct WalStats {
    /// Segment files currently on disk (sealed + active).
    pub segments: usize,
    /// Total bytes across all segments.
    pub bytes: u64,
    /// Highest record version in the log (0 if empty).
    pub last_version: u64,
}

/// The result of [`Wal::open`]: the writable log handle, every record
/// that survived on disk (in version order), and tail-damage info.
#[derive(Debug)]
pub struct OpenedWal {
    /// The log, positioned to append after the last surviving record.
    pub wal: Wal,
    /// All records on disk, in strictly increasing version order.
    pub records: Vec<WalRecord>,
    /// Set when a torn final frame was truncated away.
    pub torn_tail: Option<TornTail>,
}

/// Metadata for one on-disk segment.
#[derive(Debug)]
struct SegmentMeta {
    path: PathBuf,
    /// Last record version contained, if any record exists.
    last_version: Option<u64>,
    bytes: u64,
}

/// An append-only write-ahead log over a directory of segment files.
///
/// Not internally synchronized: callers serialize appends (the pipeline
/// holds its ingest lock across append + publish anyway, which is also
/// what keeps the version sequence gap-free).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    /// Sealed (rotated-out) segments, oldest first.
    sealed: Vec<SegmentMeta>,
    /// The active segment's metadata and open handle, if any.
    active: Option<(SegmentMeta, File)>,
    /// Highest version ever appended or recovered (0 if none).
    last_version: u64,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
}

/// Encodes one frame: `[len][crc][payload]`.
fn encode_frame(record: &WalRecord) -> Result<Vec<u8>, WalError> {
    let payload = serde_json::to_string(record).map_err(|e| WalError::Format(e.to_string()))?;
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// CRC-32 (IEEE 802.3, the `cksum`/zlib polynomial), bitwise.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Best-effort directory fsync, so segment creation/removal survives a
/// power failure on filesystems that need it.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn segment_file_name(first_version: u64) -> String {
    format!("wal-{first_version:020}.log")
}

/// Parses `wal-<version>.log` back into the version, if it matches.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// One segment's scan result.
struct ScannedSegment {
    meta: SegmentMeta,
    records: Vec<WalRecord>,
    /// Offset where a torn tail begins, if the file ends mid-frame.
    torn_at: Option<u64>,
}

/// Reads every frame of one segment. `torn_at` is set (instead of an
/// error) when the file ends mid-frame; the caller decides whether that
/// position is tolerable.
fn scan_segment(path: &Path) -> Result<ScannedSegment, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut torn_at = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < FRAME_HEADER {
            torn_at = Some(offset as u64);
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            return Err(WalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: format!("frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"),
            });
        }
        let len = len as usize;
        if remaining < FRAME_HEADER + len {
            torn_at = Some(offset as u64);
            break;
        }
        let payload = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
        let actual = crc32(payload);
        if actual != crc {
            return Err(WalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: format!("crc mismatch (stored {crc:#010x}, computed {actual:#010x})"),
            });
        }
        let record: WalRecord =
            serde_json::from_str(std::str::from_utf8(payload).map_err(|e| WalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: format!("payload is not utf-8 despite a valid crc: {e}"),
            })?)
            .map_err(|e| WalError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                detail: format!("payload is not a wal record despite a valid crc: {e}"),
            })?;
        records.push(record);
        offset += FRAME_HEADER + len;
    }
    let good_bytes = torn_at.unwrap_or(bytes.len() as u64);
    Ok(ScannedSegment {
        meta: SegmentMeta {
            path: path.to_path_buf(),
            last_version: records.last().map(|r| r.version),
            bytes: good_bytes,
        },
        records,
        torn_at,
    })
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, replay-scanning every
    /// segment. See the module docs for torn-tail vs corruption handling.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<OpenedWal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(v) = name.to_str().and_then(parse_segment_name) {
                names.push((v, entry.path()));
            }
        }
        names.sort();

        let mut records = Vec::new();
        let mut torn_tail = None;
        let mut segments = Vec::new();
        let last_index = names.len().saturating_sub(1);
        for (i, (_, path)) in names.iter().enumerate() {
            let scanned = scan_segment(path)?;
            if let Some(at) = scanned.torn_at {
                if i != last_index {
                    // Mid-log truncation: rotation means records follow
                    // this segment, so the tail here was never the write
                    // frontier — refuse rather than drop history.
                    return Err(WalError::Corrupt {
                        path: path.clone(),
                        offset: at,
                        detail: "segment ends mid-frame but is not the last segment".into(),
                    });
                }
                let full = fs::metadata(path)?.len();
                let keep = scanned.meta.bytes;
                OpenOptions::new().write(true).open(path)?.set_len(keep)?;
                torn_tail = Some(TornTail {
                    path: path.clone(),
                    dropped_bytes: full - keep,
                });
            }
            // Versions must increase across the whole log.
            for r in &scanned.records {
                let last = records.last().map(|r: &WalRecord| r.version).unwrap_or(0);
                if r.version <= last {
                    return Err(WalError::Corrupt {
                        path: path.clone(),
                        offset: 0,
                        detail: format!(
                            "record version {} does not advance past {last}",
                            r.version
                        ),
                    });
                }
            }
            records.extend(scanned.records);
            segments.push(scanned.meta);
        }

        let last_version = records.last().map(|r| r.version).unwrap_or(0);
        // The newest segment stays active for appends; older ones are
        // sealed.
        let active = match segments.pop() {
            Some(meta) => {
                let file = OpenOptions::new().append(true).open(&meta.path)?;
                Some((meta, file))
            }
            None => None,
        };

        Ok(OpenedWal {
            wal: Wal {
                dir,
                config,
                sealed: segments,
                active,
                last_version,
                unsynced: 0,
            },
            records,
            torn_tail,
        })
    }

    /// Appends one record. Must be called with strictly increasing
    /// versions; rotates segments as configured; fsyncs per policy.
    pub fn append(&mut self, version: u64, batch: &DeltaBatch) -> Result<AppendInfo, WalError> {
        if version <= self.last_version {
            return Err(WalError::VersionOrder {
                last: self.last_version,
                got: version,
            });
        }
        let t0 = Instant::now();
        let frame = encode_frame(&WalRecord {
            version,
            batch: batch.clone(),
        })?;

        // Rotate when the active segment is non-empty and this frame
        // would push it past the cap.
        let mut rotated = false;
        if let Some((meta, file)) = &mut self.active {
            if meta.last_version.is_some()
                && meta.bytes + frame.len() as u64 > self.config.segment_max_bytes
            {
                if self.config.fsync != FsyncPolicy::Off {
                    file.sync_data()?;
                    self.unsynced = 0;
                }
                let (meta, _) = self.active.take().unwrap();
                self.sealed.push(meta);
                rotated = true;
            }
        }
        if self.active.is_none() {
            let path = self.dir.join(segment_file_name(version));
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            sync_dir(&self.dir);
            self.active = Some((
                SegmentMeta {
                    path,
                    last_version: None,
                    bytes: 0,
                },
                file,
            ));
        }

        let (meta, file) = self.active.as_mut().unwrap();
        file.write_all(&frame)?;
        meta.bytes += frame.len() as u64;
        meta.last_version = Some(version);
        self.last_version = version;
        let append = t0.elapsed();

        self.unsynced += 1;
        let fsync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Off => false,
        };
        let fsync = if fsync {
            let t1 = Instant::now();
            file.sync_data()?;
            self.unsynced = 0;
            Some(t1.elapsed())
        } else {
            None
        };

        Ok(AppendInfo {
            bytes: frame.len() as u64,
            append,
            fsync,
            rotated,
        })
    }

    /// Forces an fsync of the active segment regardless of policy.
    pub fn sync(&mut self) -> Result<Duration, WalError> {
        let t0 = Instant::now();
        if let Some((_, file)) = &mut self.active {
            file.sync_data()?;
        }
        self.unsynced = 0;
        Ok(t0.elapsed())
    }

    /// Deletes every segment whose records are all at or below
    /// `version` — the checkpoint-truncation step. Returns the removed
    /// paths. The active segment is removed too when fully covered
    /// (appends then start a fresh segment).
    pub fn truncate_below(&mut self, version: u64) -> Result<Vec<PathBuf>, WalError> {
        let mut removed = Vec::new();
        let mut keep = Vec::new();
        for meta in self.sealed.drain(..) {
            let covered = meta.last_version.map(|v| v <= version).unwrap_or(true);
            if covered {
                fs::remove_file(&meta.path)?;
                removed.push(meta.path);
            } else {
                keep.push(meta);
            }
        }
        self.sealed = keep;
        if let Some((meta, _)) = &self.active {
            let covered = meta.last_version.map(|v| v <= version).unwrap_or(true);
            if covered {
                let (meta, file) = self.active.take().unwrap();
                drop(file);
                fs::remove_file(&meta.path)?;
                removed.push(meta.path);
                self.unsynced = 0;
            }
        }
        if !removed.is_empty() {
            sync_dir(&self.dir);
        }
        Ok(removed)
    }

    /// Current shape: segment count, total bytes, last logged version.
    pub fn stats(&self) -> WalStats {
        let mut segments = self.sealed.len();
        let mut bytes: u64 = self.sealed.iter().map(|m| m.bytes).sum();
        if let Some((meta, _)) = &self.active {
            segments += 1;
            bytes += meta.bytes;
        }
        WalStats {
            segments,
            bytes,
            last_version: self.last_version,
        }
    }

    /// Highest version ever logged (0 if the log is empty).
    pub fn last_version(&self) -> u64 {
        self.last_version
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iyp_wal_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(asn: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        let n = b.add_node(["AS"], props!("asn" => asn));
        b.set_node_prop(n, "name", format!("AS{asn}"));
        b
    }

    fn batch_json(b: &DeltaBatch) -> String {
        serde_json::to_string(b).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = test_dir("roundtrip");
        {
            let mut opened = Wal::open(&dir, WalConfig::default()).unwrap();
            assert!(opened.records.is_empty());
            for v in 2..=6u64 {
                let info = opened.wal.append(v, &batch(v as i64)).unwrap();
                assert!(info.bytes > FRAME_HEADER as u64);
                assert!(info.fsync.is_some(), "always policy must fsync");
            }
            assert_eq!(opened.wal.last_version(), 6);
        }
        let opened = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(opened.torn_tail.is_none());
        let versions: Vec<u64> = opened.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![2, 3, 4, 5, 6]);
        for r in &opened.records {
            assert_eq!(batch_json(&r.batch), batch_json(&batch(r.version as i64)));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = test_dir("rotation");
        let config = WalConfig {
            segment_max_bytes: 256, // a frame or two per segment
            fsync: FsyncPolicy::Off,
        };
        let mut opened = Wal::open(&dir, config.clone()).unwrap();
        let mut rotations = 0;
        for v in 2..=20u64 {
            if opened.wal.append(v, &batch(v as i64)).unwrap().rotated {
                rotations += 1;
            }
        }
        assert!(rotations >= 5, "tiny cap should rotate often");
        let stats = opened.wal.stats();
        assert_eq!(stats.segments, rotations + 1);
        drop(opened);

        let opened = Wal::open(&dir, config).unwrap();
        let versions: Vec<u64> = opened.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, (2..=20).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_policy_syncs_on_schedule() {
        let dir = test_dir("every_n");
        let config = WalConfig {
            fsync: FsyncPolicy::EveryN(3),
            ..WalConfig::default()
        };
        let mut opened = Wal::open(&dir, config).unwrap();
        let synced: Vec<bool> = (2..=8u64)
            .map(|v| opened.wal.append(v, &batch(1)).unwrap().fsync.is_some())
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true, false]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = test_dir("torn");
        let mut opened = Wal::open(&dir, WalConfig::default()).unwrap();
        for v in 2..=4u64 {
            opened.wal.append(v, &batch(v as i64)).unwrap();
        }
        drop(opened);
        // Simulate a crash mid-append: a half-written frame at the tail.
        let seg = dir.join(segment_file_name(2));
        let good_len = fs::metadata(&seg).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&1000u32.to_le_bytes()).unwrap();
        f.write_all(&[0xAB; 10]).unwrap();
        drop(f);

        let opened = Wal::open(&dir, WalConfig::default()).unwrap();
        let torn = opened.torn_tail.expect("torn tail not reported");
        assert_eq!(torn.dropped_bytes, 14);
        assert_eq!(fs::metadata(&seg).unwrap().len(), good_len);
        assert_eq!(opened.records.len(), 3);

        // The log still accepts appends after the repair.
        let mut wal = opened.wal;
        wal.append(5, &batch(5)).unwrap();
        drop(wal);
        let opened = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(opened.records.len(), 4);
        assert!(opened.torn_tail.is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_corruption_is_refused() {
        let dir = test_dir("corrupt");
        let mut opened = Wal::open(&dir, WalConfig::default()).unwrap();
        for v in 2..=4u64 {
            opened.wal.append(v, &batch(v as i64)).unwrap();
        }
        drop(opened);
        // Flip one payload byte of the first frame.
        let seg = dir.join(segment_file_name(2));
        let mut bytes = fs::read(&seg).unwrap();
        bytes[FRAME_HEADER + 5] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();

        match Wal::open(&dir, WalConfig::default()) {
            Err(WalError::Corrupt { path, offset, .. }) => {
                assert_eq!(path, seg);
                assert_eq!(offset, 0);
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_truncation_is_refused() {
        let dir = test_dir("midtrunc");
        let config = WalConfig {
            segment_max_bytes: 128,
            fsync: FsyncPolicy::Off,
        };
        let mut opened = Wal::open(&dir, config.clone()).unwrap();
        for v in 2..=10u64 {
            opened.wal.append(v, &batch(v as i64)).unwrap();
        }
        assert!(opened.wal.stats().segments >= 3);
        drop(opened);
        // Chop the FIRST segment mid-frame — not a crash signature, since
        // later segments exist.
        let seg = dir.join(segment_file_name(2));
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        match Wal::open(&dir, config) {
            Err(WalError::Corrupt { path, .. }) => assert_eq!(path, seg),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_below_removes_covered_segments() {
        let dir = test_dir("truncate");
        let config = WalConfig {
            segment_max_bytes: 200,
            fsync: FsyncPolicy::Off,
        };
        let mut opened = Wal::open(&dir, config.clone()).unwrap();
        for v in 2..=12u64 {
            opened.wal.append(v, &batch(v as i64)).unwrap();
        }
        let before = opened.wal.stats();
        assert!(before.segments >= 3);

        // Checkpoint at version 7: segments fully ≤ 7 go away; the one
        // straddling the boundary stays (its tail is still needed).
        let removed = opened.wal.truncate_below(7).unwrap();
        assert!(!removed.is_empty());
        let after = opened.wal.stats();
        assert!(after.segments < before.segments);
        drop(opened);

        let reopened = Wal::open(&dir, config.clone()).unwrap();
        let versions: Vec<u64> = reopened.records.iter().map(|r| r.version).collect();
        assert!(versions.contains(&12));
        assert!(versions.iter().all(|&v| versions.contains(&12) && v > 0));
        // Every surviving record above the checkpoint is intact.
        for v in 8..=12 {
            assert!(versions.contains(&v), "record {v} lost by truncation");
        }

        // Checkpoint at the head: everything goes, and the next append
        // starts a fresh segment.
        let mut wal = reopened.wal;
        wal.truncate_below(12).unwrap();
        assert_eq!(wal.stats().segments, 0);
        wal.append(13, &batch(13)).unwrap();
        assert_eq!(wal.stats().segments, 1);
        drop(wal);
        let opened = Wal::open(&dir, config).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.records[0].version, 13);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_append_version_is_rejected() {
        let dir = test_dir("version_order");
        let mut opened = Wal::open(&dir, WalConfig::default()).unwrap();
        opened.wal.append(5, &batch(1)).unwrap();
        match opened.wal.append(5, &batch(2)) {
            Err(WalError::VersionOrder { last: 5, got: 5 }) => {}
            other => panic!("expected version-order error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("every_n").unwrap(),
            FsyncPolicy::EveryN(8)
        );
        assert_eq!(
            FsyncPolicy::parse("every_n:32").unwrap(),
            FsyncPolicy::EveryN(32)
        );
        assert!(FsyncPolicy::parse("every_n:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::parse("every_n:32").unwrap().as_str(),
            "every_n:32"
        );
    }
}
