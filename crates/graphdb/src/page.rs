//! Copy-on-write paged record storage.
//!
//! The graph's node and relationship tables, and each label's membership
//! set, are split into fixed-size chunks held behind [`Arc`]s. Cloning a
//! [`PagedVec`] (or [`LabelSet`]) copies only the page *table* — a vector
//! of pointers — so `Graph::clone` is proportional to the number of pages
//! (graph_size / [`PAGE_SIZE`]) in pointer bumps, not to the number of
//! records in allocations. Mutation goes through [`Arc::make_mut`], which
//! materializes a private copy of just the touched page on first write
//! (path-copying).
//!
//! The copy-on-write is **two-level**: a page is a vector of
//! `Option<Arc<T>>` slots, so path-copying a page clones [`PAGE_SIZE`]
//! *pointers* (a memcpy plus refcount bumps, well under a microsecond),
//! and only the one record actually written gets a private deep copy via
//! a second `Arc::make_mut`. Applying a [`crate::delta::DeltaBatch`] of
//! `k` ops therefore deep-copies O(k) *records* — not O(k) full pages of
//! records — which is what keeps apply cost flat across graph scales
//! even when a batch's endpoints scatter over many pages.
//!
//! [`PAGE_SIZE`] = 16 balances the two costs it trades off: the
//! pointer-copy cost of one path-copied page (16 `Arc` clones, a
//! 128-byte memcpy plus refcount bumps — well under a microsecond even
//! from cold memory) and the page-table length a full clone must copy
//! (a million-node graph is a ~62k-pointer table, a sub-millisecond
//! clone). The choice deliberately favors the write side: with records
//! behind their own `Arc`s a page copy touches one scattered cache line
//! per slot (each record's refcount), so small pages are what keep
//! apply latency flat across graph scales when a `DeltaBatch`'s
//! endpoints scatter widely. The table-length cost this trades away
//! stays modest because a clone walks the table sequentially
//! (hardware-prefetchable) while page copies chase pointers.

use crate::graph::NodeId;
use serde::{Content, Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// Records per page. See the module docs for the rationale.
pub const PAGE_SIZE: usize = 16;

/// Node ids per [`LabelSet`] shard. Wider than [`PAGE_SIZE`] because a
/// shard copy duplicates plain `NodeId`s inside one allocation — cheap
/// per element, no pointer chasing — while every shard is one more `Arc`
/// a full clone must bump. Membership writes also cluster at the id
/// tail (new nodes take fresh ids), so shard width barely affects write
/// amplification.
pub const LABEL_SHARD: usize = 256;

/// A paged, copy-on-write vector of optional record slots.
///
/// Semantically identical to the `Vec<Option<T>>` it replaces: slots are
/// appended with [`PagedVec::push`], tombstoned with [`PagedVec::take`],
/// and indexed by their append position (ids are never reused). The
/// difference is the cost model — see the module docs.
#[derive(Debug)]
pub struct PagedVec<T> {
    /// Page table: `pages[p]` holds slots `[p * PAGE_SIZE, …)`. Every
    /// page but the last holds exactly `PAGE_SIZE` slots. Records sit
    /// behind their own `Arc` so a page copy clones pointers, not
    /// records (two-level COW — see the module docs).
    pages: Vec<Arc<Vec<Option<Arc<T>>>>>,
    /// Total slots (live + tombstoned) — the next append position.
    len: usize,
}

impl<T> Clone for PagedVec<T> {
    /// Copies the page table with some append slack. A derived clone
    /// would size the table exactly (`Vec::clone` allocates capacity ==
    /// len), making the *first* append after a COW clone re-allocate and
    /// memcpy the whole table — an O(pages) cost smuggled into what must
    /// be an O(delta) apply. Reserving the slack here costs nothing
    /// extra (the clone allocates and copies the table either way).
    fn clone(&self) -> Self {
        let mut pages = Vec::with_capacity(self.pages.len() + self.pages.len() / 8 + 4);
        pages.extend(self.pages.iter().cloned());
        PagedVec {
            pages,
            len: self.len,
        }
    }
}

impl<T> Default for PagedVec<T> {
    fn default() -> Self {
        PagedVec {
            pages: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Clone> PagedVec<T> {
    /// An empty table.
    pub fn new() -> Self {
        PagedVec {
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Total slots ever appended (live + tombstoned).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slot was ever appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live record at `i`, or `None` for tombstoned/out-of-range.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.pages
            .get(i / PAGE_SIZE)?
            .get(i % PAGE_SIZE)?
            .as_deref()
    }

    /// Mutable access to the live record at `i`. Path-copies the touched
    /// page's pointer table if it is shared with other clones, and
    /// deep-copies only the one record being written; every other page
    /// and record stays shared untouched.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        // Check existence through the shared reference first, so a miss
        // (tombstoned or out of range) never forces a page copy.
        self.get(i)?;
        Arc::make_mut(self.pages.get_mut(i / PAGE_SIZE)?)
            .get_mut(i % PAGE_SIZE)?
            .as_mut()
            .map(Arc::make_mut)
    }

    /// Tombstones slot `i`, returning the record it held. Path-copies the
    /// touched page's pointer table; a slot that is already empty costs
    /// nothing.
    pub fn take(&mut self, i: usize) -> Option<T> {
        self.get(i)?;
        Arc::make_mut(self.pages.get_mut(i / PAGE_SIZE)?)
            .get_mut(i % PAGE_SIZE)?
            .take()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
    }

    /// Appends a live record, returning its slot index. Path-copies only
    /// the final (partially filled) page.
    pub fn push(&mut self, value: T) -> usize {
        let i = self.len;
        if i.is_multiple_of(PAGE_SIZE) {
            self.pages.push(Arc::new(Vec::with_capacity(PAGE_SIZE)));
        }
        Arc::make_mut(self.pages.last_mut().expect("page pushed above"))
            .push(Some(Arc::new(value)));
        self.len += 1;
        i
    }

    /// Iterates every slot in append order (tombstones included, as
    /// `None`) — the same shape the flat `Vec<Option<T>>` iterated.
    pub fn iter(&self) -> impl Iterator<Item = Option<&T>> {
        self.pages
            .iter()
            .flat_map(|p| p.iter().map(Option::as_deref))
    }

    /// Rebuilds from a flat slot list, re-chunking into `PAGE_SIZE` pages.
    pub fn from_slots(slots: Vec<Option<T>>) -> Self {
        let len = slots.len();
        let mut pages = Vec::with_capacity(len.div_ceil(PAGE_SIZE));
        let mut it = slots.into_iter().map(|s| s.map(Arc::new));
        loop {
            let chunk: Vec<Option<Arc<T>>> = it.by_ref().take(PAGE_SIZE).collect();
            if chunk.is_empty() {
                break;
            }
            pages.push(Arc::new(chunk));
        }
        PagedVec { pages, len }
    }

    /// Number of pages in the table.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages whose `Arc` is shared with at least one other clone — the
    /// memory this table *retains* but does not exclusively own.
    pub fn shared_page_count(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Approximate heap bytes reachable from this table, using `f` to
    /// size one record's own heap payload. Counts each page and record
    /// once whether shared or owned (retained-set semantics).
    pub fn heap_bytes(&self, mut f: impl FnMut(&T) -> usize) -> usize {
        let slot = std::mem::size_of::<Option<Arc<T>>>();
        let rec = std::mem::size_of::<T>();
        self.pages
            .iter()
            .map(|p| {
                std::mem::size_of::<Vec<Option<Arc<T>>>>()
                    + p.capacity() * slot
                    + p.iter().flatten().map(|r| rec + f(r)).sum::<usize>()
            })
            .sum::<usize>()
            + self.pages.capacity() * std::mem::size_of::<Arc<Vec<Option<Arc<T>>>>>()
    }

    /// Materializes a private copy of every shared page and record,
    /// emulating the deep clone the pre-paged store performed on each
    /// ingest. Used by benches to measure what path-copying saves; never
    /// on a hot path.
    pub fn make_owned(&mut self) {
        for p in &mut self.pages {
            for r in Arc::make_mut(p).iter_mut().flatten() {
                Arc::make_mut(r);
            }
        }
    }
}

impl<T: Serialize> Serialize for PagedVec<T> {
    /// Serializes the paged layout: `{"page_size": N, "pages": [[…] …]}`.
    /// Tombstones serialize as `null`, exactly as the flat layout did.
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("page_size".to_string(), Content::U64(PAGE_SIZE as u64)),
            (
                "pages".to_string(),
                Content::Seq(
                    self.pages
                        .iter()
                        .map(|p| {
                            Content::Seq(
                                p.iter()
                                    .map(|slot| match slot.as_deref() {
                                        Some(v) => v.serialize(),
                                        None => Content::Null,
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl<T: Deserialize + Clone> Deserialize for PagedVec<T> {
    /// Accepts both layouts: the paged map above, and the legacy flat
    /// `[…]` slot array written by the pre-paged store. Either way the
    /// slots are re-chunked to the current [`PAGE_SIZE`], so files
    /// written with a different page size load fine too.
    fn deserialize(c: &Content) -> Result<Self, serde::Error> {
        let slots: Vec<Option<T>> = match c {
            Content::Seq(_) => Deserialize::deserialize(c)?,
            Content::Map(m) => match serde::content_get(m, "pages") {
                Some(Content::Seq(pages)) => {
                    let mut slots = Vec::new();
                    for page in pages {
                        let mut chunk: Vec<Option<T>> = Deserialize::deserialize(page)?;
                        slots.append(&mut chunk);
                    }
                    slots
                }
                _ => return Err(serde::Error::custom("paged layout missing `pages`")),
            },
            _ => return Err(serde::Error::custom("expected sequence or paged map")),
        };
        Ok(PagedVec::from_slots(slots))
    }
}

/// One label's membership set, sharded by node-id range.
///
/// Shard `s` holds the member ids in `[s * LABEL_SHARD,
/// (s+1) * LABEL_SHARD)`, each behind an `Arc`. Inserting or removing
/// one node path-copies one shard of at most [`LABEL_SHARD`] ids;
/// iteration walks shards in order, so members still come out ascending
/// exactly like the flat `BTreeSet` they replace.
#[derive(Debug, Clone, Default)]
pub struct LabelSet {
    shards: Vec<Arc<BTreeSet<NodeId>>>,
    len: usize,
}

/// The shared all-empty shard: growing a shard table to reach a high node
/// id fills the gap with refcount bumps, not allocations.
fn empty_shard() -> Arc<BTreeSet<NodeId>> {
    static EMPTY: OnceLock<Arc<BTreeSet<NodeId>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(BTreeSet::new())))
}

impl LabelSet {
    /// An empty membership set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member nodes. O(1) — maintained on mutation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no node carries the label.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `id`, path-copying only its shard. Returns whether it was new.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let s = id.0 as usize / LABEL_SHARD;
        while self.shards.len() <= s {
            self.shards.push(empty_shard());
        }
        let added = Arc::make_mut(&mut self.shards[s]).insert(id);
        if added {
            self.len += 1;
        }
        added
    }

    /// Removes `id`, path-copying only its shard. Returns whether it was
    /// present; an absent id costs nothing.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let s = id.0 as usize / LABEL_SHARD;
        let Some(shard) = self.shards.get_mut(s) else {
            return false;
        };
        if !shard.contains(&id) {
            return false;
        }
        Arc::make_mut(shard).remove(&id);
        self.len -= 1;
        true
    }

    /// Member ids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.shards.iter().flat_map(|s| s.iter().copied())
    }

    /// Number of shards in the table (including empty gap shards).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards shared with at least one other clone (the all-empty filler
    /// shard counts once it has more than one global user).
    pub fn shared_shard_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| Arc::strong_count(s) > 1)
            .count()
    }

    /// Approximate heap bytes reachable from this set.
    pub fn heap_bytes(&self) -> usize {
        self.shards.capacity() * std::mem::size_of::<Arc<BTreeSet<NodeId>>>()
            + self
                .shards
                .iter()
                .map(|s| s.len() * std::mem::size_of::<NodeId>() * 2)
                .sum::<usize>()
    }

    /// Materializes private copies of all shared shards (bench-only; see
    /// [`PagedVec::make_owned`]).
    pub fn make_owned(&mut self) {
        for s in &mut self.shards {
            Arc::make_mut(s);
        }
    }
}

impl Serialize for LabelSet {
    /// Serializes flat — a sorted id array, byte-identical to the
    /// `BTreeSet<NodeId>` the pre-paged store wrote, so label membership
    /// needs no format migration in either direction.
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(|id| id.serialize()).collect())
    }
}

impl Deserialize for LabelSet {
    fn deserialize(c: &Content) -> Result<Self, serde::Error> {
        let ids: Vec<NodeId> = Deserialize::deserialize(c)?;
        let mut set = LabelSet::new();
        for id in ids {
            set.insert(id);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_take_roundtrip() {
        let mut v: PagedVec<String> = PagedVec::new();
        for i in 0..600 {
            assert_eq!(v.push(format!("r{i}")), i);
        }
        assert_eq!(v.len(), 600);
        assert_eq!(v.page_count(), 600usize.div_ceil(PAGE_SIZE));
        assert_eq!(v.get(0).map(String::as_str), Some("r0"));
        assert_eq!(v.get(599).map(String::as_str), Some("r599"));
        assert!(v.get(600).is_none());
        assert_eq!(v.take(5), Some("r5".to_string()));
        assert!(v.get(5).is_none());
        assert!(v.take(5).is_none());
        // Tombstones stay as holes in iteration.
        assert_eq!(v.iter().count(), 600);
        assert_eq!(v.iter().filter(|s| s.is_some()).count(), 599);
        // len is append position, not live count.
        assert_eq!(v.push("again".to_string()), 600);
    }

    #[test]
    fn clone_shares_pages_and_mutation_path_copies() {
        let mut v: PagedVec<u64> = PagedVec::new();
        for i in 0..1024 {
            v.push(i);
        }
        let snapshot = v.clone();
        let pages = 1024 / PAGE_SIZE;
        assert_eq!(v.shared_page_count(), pages);

        // Mutating one record un-shares exactly one page.
        *v.get_mut(700).unwrap() = 9999;
        assert_eq!(v.shared_page_count(), pages - 1);
        assert_eq!(snapshot.shared_page_count(), pages - 1);

        // The snapshot still sees the old value; the mutant the new one.
        assert_eq!(snapshot.get(700), Some(&700));
        assert_eq!(v.get(700), Some(&9999));

        // Appending touches only the (new) last page.
        let before = snapshot.clone();
        let mut w = before.clone();
        w.push(1);
        assert_eq!(before.get(1023), Some(&1023));
        assert_eq!(before.len(), 1024);
    }

    #[test]
    fn miss_paths_do_not_copy_shared_pages() {
        let mut v: PagedVec<u64> = PagedVec::new();
        for i in 0..300 {
            v.push(i);
        }
        v.take(10);
        let _snap = v.clone();
        let pages = 300usize.div_ceil(PAGE_SIZE);
        assert_eq!(v.shared_page_count(), pages);
        assert!(v.get_mut(10).is_none(), "tombstoned");
        assert!(v.get_mut(5000).is_none(), "out of range");
        assert!(v.take(10).is_none());
        assert_eq!(v.shared_page_count(), pages, "miss forced a page copy");
    }

    #[test]
    fn serde_pages_roundtrip_and_legacy_flat_loads() {
        let mut v: PagedVec<u64> = PagedVec::new();
        for i in 0..520 {
            v.push(i);
        }
        v.take(3);
        let paged = v.serialize();
        let back = PagedVec::<u64>::deserialize(&paged).unwrap();
        assert_eq!(back.len(), v.len());
        assert!(back.get(3).is_none());
        assert_eq!(back.get(519), Some(&519));
        assert_eq!(back.serialize(), paged, "round-trip not canonical");

        // Legacy layout: the flat slot array the pre-paged store wrote.
        let flat = Content::Seq(
            v.iter()
                .map(|slot| match slot {
                    Some(x) => x.serialize(),
                    None => Content::Null,
                })
                .collect(),
        );
        let legacy = PagedVec::<u64>::deserialize(&flat).unwrap();
        assert_eq!(legacy.serialize(), paged, "legacy load diverged");
    }

    #[test]
    fn label_set_insert_remove_iterates_ascending() {
        let mut s = LabelSet::new();
        for id in [700u64, 3, 300, 3, 0] {
            s.insert(NodeId(id));
        }
        assert_eq!(s.len(), 4);
        let ids: Vec<u64> = s.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 3, 300, 700]);
        assert!(s.remove(NodeId(300)));
        assert!(!s.remove(NodeId(300)));
        assert_eq!(s.len(), 3);
        assert_eq!(s.shard_count(), 700 / LABEL_SHARD + 1);
    }

    #[test]
    fn label_set_clone_shares_and_path_copies_one_shard() {
        let mut s = LabelSet::new();
        for id in 0..1000u64 {
            s.insert(NodeId(id));
        }
        let snap = s.clone();
        assert_eq!(s.shared_shard_count(), s.shard_count());
        s.insert(NodeId(1001));
        // Only the shard holding 1001 was copied (it was the last one).
        assert_eq!(snap.len(), 1000);
        assert_eq!(s.len(), 1001);
        assert!(s.shared_shard_count() >= s.shard_count() - 1);
    }

    #[test]
    fn label_set_serde_is_flat_and_sorted() {
        let mut s = LabelSet::new();
        s.insert(NodeId(900));
        s.insert(NodeId(2));
        let c = s.serialize();
        match &c {
            Content::Seq(items) => assert_eq!(items.len(), 2),
            other => panic!("expected flat sequence, got {other:?}"),
        }
        let back = LabelSet::deserialize(&c).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.serialize(), c);
    }
}
