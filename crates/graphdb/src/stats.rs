//! Graph statistics: label/relationship cardinalities and degree
//! distributions. Used by the query planner for scan-cost estimates and by
//! the dataset generator's self-checks.

use crate::graph::{Direction, Graph};
use serde::Serialize;
use std::collections::BTreeMap;

/// Summary statistics of a graph.
#[derive(Debug, Clone, Serialize)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live relationship count.
    pub rels: usize,
    /// Node count per label.
    pub nodes_by_label: BTreeMap<String, usize>,
    /// Relationship count per type.
    pub rels_by_type: BTreeMap<String, usize>,
    /// Degree distribution summary (undirected).
    pub degree: DegreeStats,
}

/// Memory accounting for a paged, copy-on-write graph snapshot.
///
/// Computed by [`Graph::memory_stats`]. A "shared" page/shard/partition is
/// one whose `Arc` is also held by another live `Graph` clone — an older
/// snapshot a reader still pins, or an in-flight ingest copy — so the
/// marginal cost of this snapshot is only its *owned* structures, while
/// `retained_bytes` is what the snapshot keeps reachable in total.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryStats {
    /// Approximate heap bytes reachable from the snapshot (each shared
    /// structure counted once).
    pub retained_bytes: usize,
    /// Node-table pages.
    pub node_pages: usize,
    /// Node-table pages shared with other clones.
    pub node_pages_shared: usize,
    /// Relationship-table pages.
    pub rel_pages: usize,
    /// Relationship-table pages shared with other clones.
    pub rel_pages_shared: usize,
    /// Label-membership shards across all labels.
    pub label_shards: usize,
    /// Label-membership shards shared with other clones.
    pub label_shards_shared: usize,
    /// Hash-index partitions across all indexes.
    pub index_partitions: usize,
    /// Hash-index partitions shared with other clones.
    pub index_partitions_shared: usize,
}

/// Degree distribution summary.
#[derive(Debug, Clone, Serialize)]
pub struct DegreeStats {
    /// Minimum degree among live nodes (0 for an empty graph).
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &Graph) -> GraphStats {
        let mut nodes_by_label = BTreeMap::new();
        for label in graph.all_labels() {
            let n = graph.label_count(label);
            if n > 0 {
                nodes_by_label.insert(label.to_string(), n);
            }
        }
        let mut rels_by_type: BTreeMap<String, usize> = BTreeMap::new();
        for rid in graph.all_rels() {
            let r = graph.rel(rid).expect("live rel");
            *rels_by_type
                .entry(graph.rel_type_name(r.ty).to_string())
                .or_default() += 1;
        }
        let mut degrees: Vec<usize> = graph
            .all_nodes()
            .map(|id| graph.degree(id, Direction::Both))
            .collect();
        degrees.sort_unstable();
        let degree = if degrees.is_empty() {
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
            }
        } else {
            DegreeStats {
                min: degrees[0],
                max: *degrees.last().unwrap(),
                mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
                median: degrees[degrees.len() / 2],
            }
        };
        GraphStats {
            nodes: graph.node_count(),
            rels: graph.rel_count(),
            nodes_by_label,
            rels_by_type,
            degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::Props;

    #[test]
    fn stats_on_small_graph() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], Props::new());
        let b = g.add_node(["AS"], Props::new());
        let c = g.add_node(["Country"], Props::new());
        g.add_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.rels, 2);
        assert_eq!(s.nodes_by_label["AS"], 2);
        assert_eq!(s.rels_by_type["COUNTRY"], 1);
        assert_eq!(s.degree.max, 2);
        assert!((s.degree.mean - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = GraphStats::compute(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.degree.mean, 0.0);
    }
}
