//! # iyp-graphdb
//!
//! An in-memory property-graph engine — the Neo4j substitute for the
//! ChatIYP reproduction.
//!
//! The data model follows openCypher: nodes carry labels and properties,
//! relationships are directed typed edges with properties. The store keeps
//! per-node adjacency, a per-label membership set, and optional hash/range
//! property indexes that the Cypher planner (in the `iyp-cypher` crate) uses
//! for seeks.
//!
//! ```
//! use iyp_graphdb::{Graph, Props, Value, Direction, props};
//!
//! let mut g = Graph::new();
//! let iij = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
//! let jp = g.add_node(["Country"], props!("country_code" => "JP"));
//! g.add_rel(iij, "COUNTRY", jp, Props::new()).unwrap();
//!
//! let neighbors = g.neighbors(iij, Direction::Outgoing, Some(&["COUNTRY"]));
//! assert_eq!(neighbors.len(), 1);
//! assert_eq!(g.node(jp).unwrap().props.get("country_code"), Some(&Value::from("JP")));
//! ```

#![deny(missing_docs)]

pub mod algo;
pub mod dbhits;
pub mod delta;
pub mod graph;
pub mod index;
pub mod intern;
pub mod page;
pub mod props;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod value;
pub mod wal;

pub use delta::{AppliedDelta, DeltaBatch, DeltaError, DeltaOp, NodeRef};
pub use graph::{Direction, Graph, GraphError, NodeId, NodeRecord, RelId, RelRecord};
pub use intern::{Interner, Sym};
pub use page::{LabelSet, PagedVec, PAGE_SIZE};
pub use props::Props;
pub use stats::{GraphStats, MemoryStats};
pub use store::{GraphSnapshot, GraphStore, SwapReport};
pub use value::{Value, ValueError, ValueKey};
pub use wal::{FsyncPolicy, Wal, WalConfig, WalError, WalRecord, WalStats};

/// A thread-shareable graph handle. The Cypher executor reads through a
/// shared lock; dataset loading happens through a write lock up front.
pub type SharedGraph = std::sync::Arc<parking_lot::RwLock<Graph>>;

/// Wraps a graph for shared use.
pub fn shared(graph: Graph) -> SharedGraph {
    std::sync::Arc::new(parking_lot::RwLock::new(graph))
}
