//! Property indexes.
//!
//! A hash index maps `(label, property key)` → value → node ids, giving O(1)
//! exact-match seeks for queries like `MATCH (a:AS {asn: 2497})`. An ordered
//! view can be derived for range predicates. Indexes are maintained
//! incrementally by [`crate::graph::Graph`] on every mutation.

use crate::graph::NodeId;
use crate::intern::Sym;
use crate::props::Props;
use crate::value::ValueKey;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// One hash index over `(label, key)`.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct HashIndex {
    // Serialized as a list of pairs: JSON maps require string keys.
    #[serde(with = "pairs")]
    entries: BTreeMap<ValueKey, Vec<NodeId>>,
}

mod pairs {
    use super::*;
    use serde::Content;

    pub fn serialize(map: &BTreeMap<ValueKey, Vec<NodeId>>) -> Content {
        let v: Vec<(&ValueKey, &Vec<NodeId>)> = map.iter().collect();
        serde::Serialize::serialize(&v)
    }

    pub fn deserialize(content: &Content) -> Result<BTreeMap<ValueKey, Vec<NodeId>>, serde::Error> {
        let v: Vec<(ValueKey, Vec<NodeId>)> = serde::Deserialize::deserialize(content)?;
        Ok(v.into_iter().collect())
    }
}

impl HashIndex {
    fn insert(&mut self, key: ValueKey, id: NodeId) {
        let bucket = self.entries.entry(key).or_default();
        if let Err(pos) = bucket.binary_search(&id) {
            bucket.insert(pos, id);
        }
    }

    fn remove(&mut self, key: &ValueKey, id: NodeId) {
        if let Some(bucket) = self.entries.get_mut(key) {
            if let Ok(pos) = bucket.binary_search(&id) {
                bucket.remove(pos);
            }
        }
    }
}

/// An ordered snapshot of an index, for repeated range scans.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    entries: Vec<(ValueKey, NodeId)>,
}

impl OrderedIndex {
    /// Nodes whose key falls in `[lo, hi]` under the given inclusivity.
    pub fn range(
        &self,
        lo: Option<(&ValueKey, bool)>,
        hi: Option<(&ValueKey, bool)>,
    ) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|(k, _)| {
                let above = match lo {
                    None => true,
                    Some((l, true)) => k >= l,
                    Some((l, false)) => k > l,
                };
                let below = match hi {
                    None => true,
                    Some((h, true)) => k <= h,
                    Some((h, false)) => k < h,
                };
                above && below
            })
            .map(|(_, id)| *id)
            .collect()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The set of all indexes on a graph.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IndexSet {
    // serde_json requires string keys for maps; keep a Vec of entries.
    indexes: Vec<((Sym, String), HashIndex)>,
    #[serde(skip)]
    lookup_cache: HashMap<(Sym, String), usize>,
}

impl IndexSet {
    fn slot(&self, label: Sym, key: &str) -> Option<usize> {
        if let Some(&i) = self.lookup_cache.get(&(label, key.to_string())) {
            return Some(i);
        }
        self.indexes
            .iter()
            .position(|((l, k), _)| *l == label && k == key)
    }

    /// Creates an index and backfills it from `entries`. Idempotent: an
    /// existing index is rebuilt from scratch.
    pub fn create(
        &mut self,
        label: Sym,
        key: &str,
        entries: impl Iterator<Item = (NodeId, ValueKey)>,
    ) {
        let mut idx = HashIndex::default();
        for (id, vk) in entries {
            idx.insert(vk, id);
        }
        match self.slot(label, key) {
            Some(i) => self.indexes[i].1 = idx,
            None => {
                self.lookup_cache
                    .insert((label, key.to_string()), self.indexes.len());
                self.indexes.push(((label, key.to_string()), idx));
            }
        }
    }

    /// Exact lookup; `None` if no such index.
    pub fn lookup(&self, label: Sym, key: &str, value: &ValueKey) -> Option<Vec<NodeId>> {
        let i = self.slot(label, key)?;
        Some(
            self.indexes[i]
                .1
                .entries
                .get(value)
                .cloned()
                .unwrap_or_default(),
        )
    }

    /// Range lookup over the index's ordered keys; `None` if no such index.
    pub fn range(
        &self,
        label: Sym,
        key: &str,
        lo: Option<(ValueKey, bool)>,
        hi: Option<(ValueKey, bool)>,
    ) -> Option<Vec<NodeId>> {
        let i = self.slot(label, key)?;
        let lo_bound = match &lo {
            None => Bound::Unbounded,
            Some((k, true)) => Bound::Included(k.clone()),
            Some((k, false)) => Bound::Excluded(k.clone()),
        };
        let hi_bound = match &hi {
            None => Bound::Unbounded,
            Some((k, true)) => Bound::Included(k.clone()),
            Some((k, false)) => Bound::Excluded(k.clone()),
        };
        let mut out = Vec::new();
        for (_, ids) in self.indexes[i].1.entries.range((lo_bound, hi_bound)) {
            out.extend(ids.iter().copied());
        }
        Some(out)
    }

    /// Does an index exist?
    pub fn exists(&self, label: Sym, key: &str) -> bool {
        self.slot(label, key).is_some()
    }

    /// All `(label, key)` pairs.
    pub fn list(&self) -> Vec<(Sym, String)> {
        self.indexes.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Ordered snapshot for repeated range scans.
    pub fn ordered(&self, label: Sym, key: &str) -> Option<OrderedIndex> {
        let i = self.slot(label, key)?;
        let mut entries = Vec::new();
        for (k, ids) in &self.indexes[i].1.entries {
            for id in ids {
                entries.push((k.clone(), *id));
            }
        }
        Some(OrderedIndex { entries })
    }

    // ---- maintenance hooks called by Graph ----

    pub(crate) fn on_node_added(&mut self, id: NodeId, labels: &[Sym], props: &Props) {
        for ((label, key), idx) in &mut self.indexes {
            if labels.contains(label) {
                if let Some(v) = props.get(key) {
                    idx.insert(ValueKey::of(v), id);
                }
            }
        }
    }

    pub(crate) fn on_node_removed(&mut self, id: NodeId, labels: &[Sym], props: &Props) {
        for ((label, key), idx) in &mut self.indexes {
            if labels.contains(label) {
                if let Some(v) = props.get(key) {
                    idx.remove(&ValueKey::of(v), id);
                }
            }
        }
    }

    pub(crate) fn on_prop_changed(
        &mut self,
        id: NodeId,
        labels: &[Sym],
        key: &str,
        old: Option<&crate::value::Value>,
        new: &crate::value::Value,
    ) {
        for ((label, ikey), idx) in &mut self.indexes {
            if ikey == key && labels.contains(label) {
                if let Some(old) = old {
                    idx.remove(&ValueKey::of(old), id);
                }
                if !new.is_null() {
                    idx.insert(ValueKey::of(new), id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn create_lookup_roundtrip() {
        let mut set = IndexSet::default();
        let label = Sym(0);
        set.create(
            label,
            "asn",
            vec![
                (NodeId(1), ValueKey::of(&Value::Int(10))),
                (NodeId(2), ValueKey::of(&Value::Int(20))),
            ]
            .into_iter(),
        );
        assert_eq!(
            set.lookup(label, "asn", &ValueKey::of(&Value::Int(10))),
            Some(vec![NodeId(1)])
        );
        assert_eq!(
            set.lookup(label, "asn", &ValueKey::of(&Value::Int(99))),
            Some(vec![])
        );
        assert_eq!(
            set.lookup(Sym(1), "asn", &ValueKey::of(&Value::Int(10))),
            None
        );
    }

    #[test]
    fn duplicate_values_share_bucket() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "cc",
            vec![
                (NodeId(1), ValueKey::of(&Value::from("JP"))),
                (NodeId(2), ValueKey::of(&Value::from("JP"))),
            ]
            .into_iter(),
        );
        assert_eq!(
            set.lookup(Sym(0), "cc", &ValueKey::of(&Value::from("JP"))),
            Some(vec![NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn ordered_view_ranges() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "rank",
            (1..=5).map(|i| (NodeId(i), ValueKey::of(&Value::Int(i as i64 * 10)))),
        );
        let ord = set.ordered(Sym(0), "rank").unwrap();
        assert_eq!(ord.len(), 5);
        let k20 = ValueKey::of(&Value::Int(20));
        let k40 = ValueKey::of(&Value::Int(40));
        assert_eq!(
            ord.range(Some((&k20, false)), Some((&k40, true))),
            vec![NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn recreate_rebuilds() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "x",
            vec![(NodeId(1), ValueKey::of(&Value::Int(1)))].into_iter(),
        );
        set.create(
            Sym(0),
            "x",
            vec![(NodeId(2), ValueKey::of(&Value::Int(2)))].into_iter(),
        );
        assert_eq!(
            set.lookup(Sym(0), "x", &ValueKey::of(&Value::Int(1))),
            Some(vec![])
        );
        assert_eq!(
            set.lookup(Sym(0), "x", &ValueKey::of(&Value::Int(2))),
            Some(vec![NodeId(2)])
        );
    }
}
