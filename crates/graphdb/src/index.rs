//! Property indexes.
//!
//! A hash index maps `(label, property key)` → value → node ids, giving O(1)
//! exact-match seeks for queries like `MATCH (a:AS {asn: 2497})`. An ordered
//! view can be derived for range predicates. Indexes are maintained
//! incrementally by [`crate::graph::Graph`] on every mutation.
//!
//! Storage is partitioned for copy-on-write cloning: each index's entries
//! are split across power-of-two hash partitions held behind `Arc`s, so
//! cloning an [`IndexSet`] copies partition pointers and an index update
//! path-copies only the one partition holding the touched key. Partitions
//! reshard (double) when they average more than `RESHARD_TARGET` keys,
//! keeping the path-copy cost bounded as the graph grows — the same
//! discipline as [`crate::page::PAGE_SIZE`]-record pages in the node and
//! relationship tables. The on-disk layout is unchanged from the flat
//! store: a single key-sorted pair list per index.

use crate::graph::NodeId;
use crate::intern::Sym;
use crate::props::Props;
use crate::value::ValueKey;
use serde::{Content, Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::Arc;

/// Reshard when an index averages more than this many keys per partition.
///
/// Kept deliberately small: a partition copy deep-clones its `ValueKey`s
/// (string allocations), so the per-touched-partition write amplification
/// is what this bounds. At 8 keys a path-copy is about a microsecond even
/// from cold memory; the cost of the longer partition table (one `Arc`
/// bump per partition per graph clone, walked sequentially) is noise by
/// comparison.
const RESHARD_TARGET: usize = 8;

/// One hash index over `(label, key)`, hash-partitioned by value key.
#[derive(Debug, Clone)]
struct HashIndex {
    /// Power-of-two partition table; a key lives in partition
    /// `hash(key) & (len - 1)`.
    partitions: Vec<Arc<BTreeMap<ValueKey, Vec<NodeId>>>>,
    /// Total distinct keys across partitions, driving resharding.
    keys: usize,
}

impl Default for HashIndex {
    fn default() -> Self {
        HashIndex {
            partitions: vec![Arc::new(BTreeMap::new())],
            keys: 0,
        }
    }
}

fn partition_of(key: &ValueKey, count: usize) -> usize {
    // DefaultHasher::new() is fixed-keyed, so placement is deterministic
    // within a build; placement is never persisted (snapshots store the
    // flat sorted pair list), so cross-build determinism is not needed.
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish() as usize & (count - 1)
}

impl HashIndex {
    fn insert(&mut self, key: ValueKey, id: NodeId) {
        let p = partition_of(&key, self.partitions.len());
        let part = Arc::make_mut(&mut self.partitions[p]);
        let new_key = !part.contains_key(&key);
        let bucket = part.entry(key).or_default();
        if let Err(pos) = bucket.binary_search(&id) {
            bucket.insert(pos, id);
        }
        if new_key {
            self.keys += 1;
            if self.keys > self.partitions.len() * RESHARD_TARGET {
                self.reshard();
            }
        }
    }

    fn remove(&mut self, key: &ValueKey, id: NodeId) {
        let p = partition_of(key, self.partitions.len());
        // Probe through the shared reference first so a miss (unknown key
        // or id not in its bucket) never forces a partition copy.
        match self.partitions[p].get(key) {
            Some(bucket) if bucket.binary_search(&id).is_ok() => {}
            _ => return,
        }
        let bucket = Arc::make_mut(&mut self.partitions[p])
            .get_mut(key)
            .expect("checked above");
        let pos = bucket.binary_search(&id).expect("checked above");
        bucket.remove(pos);
        // The bucket stays (possibly empty): lookups on a once-indexed key
        // must keep answering `Some(vec![])`, not "no index".
    }

    fn get(&self, key: &ValueKey) -> Option<&Vec<NodeId>> {
        self.partitions[partition_of(key, self.partitions.len())].get(key)
    }

    /// Doubles the partition count, redistributing every key. O(index),
    /// but amortized O(1) per insert by the doubling schedule.
    fn reshard(&mut self) {
        let count = self.partitions.len() * 2;
        let mut parts: Vec<BTreeMap<ValueKey, Vec<NodeId>>> =
            (0..count).map(|_| BTreeMap::new()).collect();
        for part in &self.partitions {
            for (k, ids) in part.iter() {
                parts[partition_of(k, count)].insert(k.clone(), ids.clone());
            }
        }
        self.partitions = parts.into_iter().map(Arc::new).collect();
    }

    /// All `(key, ids)` pairs with keys in `[lo, hi]`, ordered by key.
    fn range_pairs(
        &self,
        lo: Bound<&ValueKey>,
        hi: Bound<&ValueKey>,
    ) -> Vec<(&ValueKey, &Vec<NodeId>)> {
        let mut pairs: Vec<(&ValueKey, &Vec<NodeId>)> = self
            .partitions
            .iter()
            .flat_map(|p| p.range::<ValueKey, _>((lo, hi)))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs
    }
}

impl Serialize for HashIndex {
    /// Serializes the partition-merged, key-sorted pair list — exactly the
    /// layout the pre-partitioned store wrote (`{"entries": [[k, ids]…]}`),
    /// so snapshot files carry no partition geometry.
    fn serialize(&self) -> Content {
        let pairs = self.range_pairs(Bound::Unbounded, Bound::Unbounded);
        Content::Map(vec![("entries".to_string(), Serialize::serialize(&pairs))])
    }
}

impl Deserialize for HashIndex {
    fn deserialize(c: &Content) -> Result<Self, serde::Error> {
        let entries = c
            .get("entries")
            .ok_or_else(|| serde::Error::custom("index missing `entries`"))?;
        let pairs: Vec<(ValueKey, Vec<NodeId>)> = Deserialize::deserialize(entries)?;
        let mut idx = HashIndex::default();
        for (key, ids) in pairs {
            idx.bulk_insert(key, ids);
        }
        Ok(idx)
    }
}

impl HashIndex {
    /// Inserts a whole bucket (deserialization / backfill path). Keeps
    /// empty buckets, which `insert` would never create but `remove`
    /// leaves behind and snapshots faithfully persist.
    fn bulk_insert(&mut self, key: ValueKey, ids: Vec<NodeId>) {
        let p = partition_of(&key, self.partitions.len());
        let new_key = !self.partitions[p].contains_key(&key);
        Arc::make_mut(&mut self.partitions[p]).insert(key, ids);
        if new_key {
            self.keys += 1;
            if self.keys > self.partitions.len() * RESHARD_TARGET {
                self.reshard();
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.iter()
                    .map(|(k, ids)| {
                        key_heap_bytes(k)
                            + ids.capacity() * std::mem::size_of::<NodeId>()
                            // BTreeMap node overhead, roughly.
                            + 48
                    })
                    .sum::<usize>()
            })
            .sum::<usize>()
            + self.partitions.capacity()
                * std::mem::size_of::<Arc<BTreeMap<ValueKey, Vec<NodeId>>>>()
    }
}

fn key_heap_bytes(k: &ValueKey) -> usize {
    std::mem::size_of::<ValueKey>()
        + match k {
            ValueKey::Str(s) => s.len(),
            ValueKey::List(items) => items.iter().map(key_heap_bytes).sum(),
            ValueKey::Map(entries) => entries
                .iter()
                .map(|(name, v)| name.len() + key_heap_bytes(v))
                .sum(),
            _ => 0,
        }
}

/// An ordered snapshot of an index, for repeated range scans.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    entries: Vec<(ValueKey, NodeId)>,
}

impl OrderedIndex {
    /// Nodes whose key falls in `[lo, hi]` under the given inclusivity.
    pub fn range(
        &self,
        lo: Option<(&ValueKey, bool)>,
        hi: Option<(&ValueKey, bool)>,
    ) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|(k, _)| {
                let above = match lo {
                    None => true,
                    Some((l, true)) => k >= l,
                    Some((l, false)) => k > l,
                };
                let below = match hi {
                    None => true,
                    Some((h, true)) => k <= h,
                    Some((h, false)) => k < h,
                };
                above && below
            })
            .map(|(_, id)| *id)
            .collect()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The set of all indexes on a graph.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IndexSet {
    // serde_json requires string keys for maps; keep a Vec of entries.
    indexes: Vec<((Sym, String), HashIndex)>,
    #[serde(skip)]
    lookup_cache: HashMap<(Sym, String), usize>,
}

impl IndexSet {
    fn slot(&self, label: Sym, key: &str) -> Option<usize> {
        if let Some(&i) = self.lookup_cache.get(&(label, key.to_string())) {
            return Some(i);
        }
        self.indexes
            .iter()
            .position(|((l, k), _)| *l == label && k == key)
    }

    /// Creates an index and backfills it from `entries`. Idempotent: an
    /// existing index is rebuilt from scratch.
    pub fn create(
        &mut self,
        label: Sym,
        key: &str,
        entries: impl Iterator<Item = (NodeId, ValueKey)>,
    ) {
        let mut idx = HashIndex::default();
        for (id, vk) in entries {
            idx.insert(vk, id);
        }
        match self.slot(label, key) {
            Some(i) => self.indexes[i].1 = idx,
            None => {
                self.lookup_cache
                    .insert((label, key.to_string()), self.indexes.len());
                self.indexes.push(((label, key.to_string()), idx));
            }
        }
    }

    /// Exact lookup; `None` if no such index.
    pub fn lookup(&self, label: Sym, key: &str, value: &ValueKey) -> Option<Vec<NodeId>> {
        let i = self.slot(label, key)?;
        Some(self.indexes[i].1.get(value).cloned().unwrap_or_default())
    }

    /// Range lookup over the index's ordered keys; `None` if no such index.
    pub fn range(
        &self,
        label: Sym,
        key: &str,
        lo: Option<(ValueKey, bool)>,
        hi: Option<(ValueKey, bool)>,
    ) -> Option<Vec<NodeId>> {
        let i = self.slot(label, key)?;
        let lo_bound = match &lo {
            None => Bound::Unbounded,
            Some((k, true)) => Bound::Included(k),
            Some((k, false)) => Bound::Excluded(k),
        };
        let hi_bound = match &hi {
            None => Bound::Unbounded,
            Some((k, true)) => Bound::Included(k),
            Some((k, false)) => Bound::Excluded(k),
        };
        let mut out = Vec::new();
        for (_, ids) in self.indexes[i].1.range_pairs(lo_bound, hi_bound) {
            out.extend(ids.iter().copied());
        }
        Some(out)
    }

    /// Does an index exist?
    pub fn exists(&self, label: Sym, key: &str) -> bool {
        self.slot(label, key).is_some()
    }

    /// All `(label, key)` pairs.
    pub fn list(&self) -> Vec<(Sym, String)> {
        self.indexes.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Ordered snapshot for repeated range scans.
    pub fn ordered(&self, label: Sym, key: &str) -> Option<OrderedIndex> {
        let i = self.slot(label, key)?;
        let mut entries = Vec::new();
        for (k, ids) in self.indexes[i]
            .1
            .range_pairs(Bound::Unbounded, Bound::Unbounded)
        {
            for id in ids {
                entries.push((k.clone(), *id));
            }
        }
        Some(OrderedIndex { entries })
    }

    // ---- maintenance hooks called by Graph ----

    pub(crate) fn on_node_added(&mut self, id: NodeId, labels: &[Sym], props: &Props) {
        for ((label, key), idx) in &mut self.indexes {
            if labels.contains(label) {
                if let Some(v) = props.get(key) {
                    idx.insert(ValueKey::of(v), id);
                }
            }
        }
    }

    pub(crate) fn on_node_removed(&mut self, id: NodeId, labels: &[Sym], props: &Props) {
        for ((label, key), idx) in &mut self.indexes {
            if labels.contains(label) {
                if let Some(v) = props.get(key) {
                    idx.remove(&ValueKey::of(v), id);
                }
            }
        }
    }

    pub(crate) fn on_prop_changed(
        &mut self,
        id: NodeId,
        labels: &[Sym],
        key: &str,
        old: Option<&crate::value::Value>,
        new: &crate::value::Value,
    ) {
        for ((label, ikey), idx) in &mut self.indexes {
            if ikey == key && labels.contains(label) {
                if let Some(old) = old {
                    idx.remove(&ValueKey::of(old), id);
                }
                if !new.is_null() {
                    idx.insert(ValueKey::of(new), id);
                }
            }
        }
    }

    // ---- copy-on-write accounting ----

    /// Total hash partitions across all indexes.
    pub(crate) fn partition_count(&self) -> usize {
        self.indexes
            .iter()
            .map(|(_, idx)| idx.partitions.len())
            .sum()
    }

    /// Partitions whose `Arc` is shared with another `IndexSet` clone.
    pub(crate) fn shared_partition_count(&self) -> usize {
        self.indexes
            .iter()
            .flat_map(|(_, idx)| idx.partitions.iter())
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Approximate heap bytes reachable from all indexes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.indexes
            .iter()
            .map(|((_, key), idx)| key.len() + idx.heap_bytes())
            .sum()
    }

    /// Materializes private copies of all shared partitions (bench-only;
    /// see [`crate::page::PagedVec::make_owned`]).
    pub(crate) fn make_owned(&mut self) {
        for (_, idx) in &mut self.indexes {
            for p in &mut idx.partitions {
                Arc::make_mut(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn create_lookup_roundtrip() {
        let mut set = IndexSet::default();
        let label = Sym(0);
        set.create(
            label,
            "asn",
            vec![
                (NodeId(1), ValueKey::of(&Value::Int(10))),
                (NodeId(2), ValueKey::of(&Value::Int(20))),
            ]
            .into_iter(),
        );
        assert_eq!(
            set.lookup(label, "asn", &ValueKey::of(&Value::Int(10))),
            Some(vec![NodeId(1)])
        );
        assert_eq!(
            set.lookup(label, "asn", &ValueKey::of(&Value::Int(99))),
            Some(vec![])
        );
        assert_eq!(
            set.lookup(Sym(1), "asn", &ValueKey::of(&Value::Int(10))),
            None
        );
    }

    #[test]
    fn duplicate_values_share_bucket() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "cc",
            vec![
                (NodeId(1), ValueKey::of(&Value::from("JP"))),
                (NodeId(2), ValueKey::of(&Value::from("JP"))),
            ]
            .into_iter(),
        );
        assert_eq!(
            set.lookup(Sym(0), "cc", &ValueKey::of(&Value::from("JP"))),
            Some(vec![NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn ordered_view_ranges() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "rank",
            (1..=5).map(|i| (NodeId(i), ValueKey::of(&Value::Int(i as i64 * 10)))),
        );
        let ord = set.ordered(Sym(0), "rank").unwrap();
        assert_eq!(ord.len(), 5);
        let k20 = ValueKey::of(&Value::Int(20));
        let k40 = ValueKey::of(&Value::Int(40));
        assert_eq!(
            ord.range(Some((&k20, false)), Some((&k40, true))),
            vec![NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn recreate_rebuilds() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "x",
            vec![(NodeId(1), ValueKey::of(&Value::Int(1)))].into_iter(),
        );
        set.create(
            Sym(0),
            "x",
            vec![(NodeId(2), ValueKey::of(&Value::Int(2)))].into_iter(),
        );
        assert_eq!(
            set.lookup(Sym(0), "x", &ValueKey::of(&Value::Int(1))),
            Some(vec![])
        );
        assert_eq!(
            set.lookup(Sym(0), "x", &ValueKey::of(&Value::Int(2))),
            Some(vec![NodeId(2)])
        );
    }

    #[test]
    fn resharding_preserves_lookups_and_order() {
        let mut set = IndexSet::default();
        // Well past one reshard (RESHARD_TARGET keys/partition).
        set.create(
            Sym(0),
            "asn",
            (0..2000u64).map(|i| (NodeId(i), ValueKey::of(&Value::Int(i as i64)))),
        );
        let parts = set.partition_count();
        assert!(parts > 1, "expected reshard, still at {parts} partition(s)");
        assert!(parts.is_power_of_two());
        for probe in [0i64, 777, 1999] {
            assert_eq!(
                set.lookup(Sym(0), "asn", &ValueKey::of(&Value::Int(probe))),
                Some(vec![NodeId(probe as u64)])
            );
        }
        // Range output stays globally key-ordered despite hash placement.
        let lo = ValueKey::of(&Value::Int(100));
        let hi = ValueKey::of(&Value::Int(110));
        let ids = set
            .range(Sym(0), "asn", Some((lo, true)), Some((hi, false)))
            .unwrap();
        assert_eq!(ids, (100..110).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn clone_shares_partitions_and_updates_path_copy() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "asn",
            (0..2000u64).map(|i| (NodeId(i), ValueKey::of(&Value::Int(i as i64)))),
        );
        let snap = set.clone();
        assert_eq!(set.shared_partition_count(), set.partition_count());
        set.on_prop_changed(
            NodeId(5),
            &[Sym(0)],
            "asn",
            Some(&Value::Int(5)),
            &Value::Int(100_000),
        );
        // At most two partitions (old key's, new key's) were copied.
        assert!(set.shared_partition_count() >= set.partition_count() - 2);
        assert_eq!(
            snap.lookup(Sym(0), "asn", &ValueKey::of(&Value::Int(5))),
            Some(vec![NodeId(5)]),
            "snapshot saw the mutation"
        );
        assert_eq!(
            set.lookup(Sym(0), "asn", &ValueKey::of(&Value::Int(5))),
            Some(vec![])
        );
    }

    #[test]
    fn serde_layout_is_flat_sorted_pairs() {
        let mut set = IndexSet::default();
        set.create(
            Sym(0),
            "asn",
            (0..600u64)
                .rev()
                .map(|i| (NodeId(i), ValueKey::of(&Value::Int(i as i64)))),
        );
        let c = serde::Serialize::serialize(&set);
        let back: IndexSet = serde::Deserialize::deserialize(&c).unwrap();
        assert_eq!(serde::Serialize::serialize(&back), c, "not canonical");
        assert_eq!(
            back.lookup(Sym(0), "asn", &ValueKey::of(&Value::Int(599))),
            Some(vec![NodeId(599)])
        );
        assert!(back.partition_count() > 1, "reload skipped resharding");
    }
}
