//! String interning for node labels and relationship types.
//!
//! Labels and relationship types are drawn from small closed sets (the IYP
//! schema has ~15 of each), so the store keys adjacency and label indexes by
//! small integer symbols instead of strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An interned symbol. The inner index is stable for the lifetime of the
/// owning [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym(pub u32);

/// A bidirectional string ↔ symbol table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), sym);
        sym
    }

    /// Looks up an existing symbol without creating it.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.lookup.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }

    /// Rebuilds the reverse lookup after deserialization (serde skips it).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Sym(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("AS");
        let b = i.intern("Prefix");
        assert_eq!(i.intern("AS"), a);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "AS");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_create() {
        let mut i = Interner::new();
        assert!(i.get("AS").is_none());
        i.intern("AS");
        assert!(i.get("AS").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn lookup_survives_serde_roundtrip() {
        let mut i = Interner::new();
        i.intern("AS");
        i.intern("Country");
        let json = serde_json::to_string(&i).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        back.rebuild_lookup();
        assert_eq!(back.get("Country"), Some(Sym(1)));
        assert_eq!(back.resolve(Sym(0)), "AS");
    }
}
