//! Delta batches: serializable mutation sets applied atomically by the
//! [`crate::store::GraphStore`].
//!
//! A [`DeltaBatch`] is an ordered list of [`DeltaOp`]s — the wire format
//! of one IYP ingest (new BGP/WHOIS/APNIC data expressed as node and
//! relationship changes). Ops reference nodes either by their existing id
//! or positionally, as "the `i`-th node this batch creates"
//! ([`NodeRef::New`]), so a batch can wire fresh nodes together before
//! any id is known.
//!
//! Application is all-or-nothing *by construction*: the store applies a
//! batch to a private copy of the current snapshot's graph, so a failing
//! op simply discards the copy — readers never observe a half-applied
//! batch.

use crate::graph::{Graph, GraphError, NodeId, RelId};
use crate::props::Props;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node reference inside a batch: an id that already exists in the
/// target snapshot, or the index of a node the same batch creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRef {
    /// A node that exists in the snapshot the batch is applied to.
    Existing(NodeId),
    /// The `i`-th node created by this batch's `AddNode` ops (0-based,
    /// in op order).
    New(usize),
}

impl From<NodeId> for NodeRef {
    fn from(id: NodeId) -> Self {
        NodeRef::Existing(id)
    }
}

/// One mutation inside a [`DeltaBatch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Create a node with the given labels and properties.
    AddNode {
        /// Label names (interned on apply).
        labels: Vec<String>,
        /// Initial properties.
        props: Props,
    },
    /// Create a relationship `src -[ty]-> dst`.
    AddRel {
        /// Source endpoint.
        src: NodeRef,
        /// Relationship type name.
        ty: String,
        /// Target endpoint.
        dst: NodeRef,
        /// Relationship properties.
        props: Props,
    },
    /// Set (or with `Value::Null`, clear) one node property.
    SetNodeProp {
        /// The node to update.
        node: NodeRef,
        /// Property key.
        key: String,
        /// New value.
        value: Value,
    },
    /// Set one relationship property.
    SetRelProp {
        /// The relationship to update (existing rels only — a rel this
        /// batch creates can carry its properties in `AddRel`).
        rel: RelId,
        /// Property key.
        key: String,
        /// New value.
        value: Value,
    },
    /// Add a label to a node.
    AddLabel {
        /// The node to label.
        node: NodeRef,
        /// Label name.
        label: String,
    },
    /// Detach-delete a node (all its relationships go with it).
    RemoveNode {
        /// The node to remove.
        node: NodeRef,
    },
    /// Remove a relationship.
    RemoveRel {
        /// The relationship to remove.
        rel: RelId,
    },
    /// Create (and backfill) a hash index on `(label, key)`.
    CreateIndex {
        /// Label name.
        label: String,
        /// Property key.
        key: String,
    },
}

/// Errors raised while applying a batch. The failing op's index is
/// reported so ingest clients can pinpoint the bad entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A [`NodeRef::New`] pointed past the nodes the batch created so far.
    UnknownNewNode {
        /// Index of the failing op within the batch.
        op: usize,
        /// The out-of-range `New` index.
        index: usize,
    },
    /// The underlying graph mutation failed (missing node/rel).
    Graph {
        /// Index of the failing op within the batch.
        op: usize,
        /// The graph-level error.
        source: GraphError,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNewNode { op, index } => {
                write!(
                    f,
                    "op {op}: NodeRef::New({index}) not created by this batch"
                )
            }
            DeltaError::Graph { op, source } => write!(f, "op {op}: {source}"),
        }
    }
}
impl std::error::Error for DeltaError {}

/// What applying a batch touched — the input downstream derived state
/// (vector documents, entity catalogs) needs to refresh incrementally
/// instead of rebuilding from the whole graph.
///
/// Node ids refer to the graph the batch was applied to. `touched`
/// includes every node whose *own* record changed (property set, label
/// added) **and** every node adjacent to a structural change (both
/// endpoints of added/removed/re-propertied relationships, and the
/// former neighbors of removed nodes), because a node's derived
/// description typically renders 1-hop context. `prop_changed` is the
/// subset of `touched` whose own properties or labels changed — the
/// only changes that can invalidate a *neighbor's* derived description
/// (which renders neighbor names and label-filtered counts, but never
/// facts two hops away), so consumers expand one hop from
/// `prop_changed` alone instead of from everything the batch brushed.
/// Ids may repeat across and within the lists; consumers dedup.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// Ops applied (the whole batch, on success).
    pub ops_applied: usize,
    /// Nodes this batch created, in creation order.
    pub created: Vec<NodeId>,
    /// Pre-existing nodes whose record or 1-hop neighborhood changed.
    pub touched: Vec<NodeId>,
    /// Nodes whose own properties or labels changed (a subset of
    /// `created ∪ touched`): the set whose neighbors' derived
    /// descriptions may be stale.
    pub prop_changed: Vec<NodeId>,
    /// Nodes this batch removed (their ids are dead in the new graph).
    pub removed: Vec<NodeId>,
}

impl AppliedDelta {
    /// Every surviving node id the batch affected, deduplicated and
    /// sorted: `created ∪ touched`, minus `removed`.
    pub fn affected(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .created
            .iter()
            .chain(&self.touched)
            .filter(|id| !self.removed.contains(id))
            .copied()
            .collect();
        ids.sort_unstable_by_key(|id| id.0);
        ids.dedup();
        ids
    }
}

/// An ordered, serializable batch of graph mutations.
///
/// Build one with the fluent helpers ([`DeltaBatch::add_node`] returns
/// the [`NodeRef`] later ops use), or deserialize one from the JSON an
/// ingest client posts to `POST /admin/ingest`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeltaBatch {
    /// The mutations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queues a node creation; the returned [`NodeRef`] addresses the new
    /// node in later ops of the same batch.
    pub fn add_node<I, S>(&mut self, labels: I, props: Props) -> NodeRef
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let index = self
            .ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::AddNode { .. }))
            .count();
        self.ops.push(DeltaOp::AddNode {
            labels: labels.into_iter().map(Into::into).collect(),
            props,
        });
        NodeRef::New(index)
    }

    /// Queues a relationship creation.
    pub fn add_rel(
        &mut self,
        src: impl Into<NodeRef>,
        ty: impl Into<String>,
        dst: impl Into<NodeRef>,
        props: Props,
    ) {
        self.ops.push(DeltaOp::AddRel {
            src: src.into(),
            ty: ty.into(),
            dst: dst.into(),
            props,
        });
    }

    /// Queues a node property update.
    pub fn set_node_prop(
        &mut self,
        node: impl Into<NodeRef>,
        key: impl Into<String>,
        value: impl Into<Value>,
    ) {
        self.ops.push(DeltaOp::SetNodeProp {
            node: node.into(),
            key: key.into(),
            value: value.into(),
        });
    }

    /// Queues a relationship property update.
    pub fn set_rel_prop(&mut self, rel: RelId, key: impl Into<String>, value: impl Into<Value>) {
        self.ops.push(DeltaOp::SetRelProp {
            rel,
            key: key.into(),
            value: value.into(),
        });
    }

    /// Queues a label addition.
    pub fn add_label(&mut self, node: impl Into<NodeRef>, label: impl Into<String>) {
        self.ops.push(DeltaOp::AddLabel {
            node: node.into(),
            label: label.into(),
        });
    }

    /// Queues a detach-delete of a node.
    pub fn remove_node(&mut self, node: impl Into<NodeRef>) {
        self.ops.push(DeltaOp::RemoveNode { node: node.into() });
    }

    /// Queues a relationship removal.
    pub fn remove_rel(&mut self, rel: RelId) {
        self.ops.push(DeltaOp::RemoveRel { rel });
    }

    /// Queues an index creation.
    pub fn create_index(&mut self, label: impl Into<String>, key: impl Into<String>) {
        self.ops.push(DeltaOp::CreateIndex {
            label: label.into(),
            key: key.into(),
        });
    }

    /// Applies every op to `graph` in order, returning the number of ops
    /// applied.
    ///
    /// On error the graph is left with a *prefix* of the batch applied —
    /// callers that need atomicity apply to a scratch copy and discard it
    /// on failure, which is exactly what
    /// [`crate::store::GraphStore::ingest`] does.
    pub fn apply(&self, graph: &mut Graph) -> Result<usize, DeltaError> {
        self.apply_tracked(graph).map(|d| d.ops_applied)
    }

    /// [`DeltaBatch::apply`], additionally reporting *which* nodes the
    /// batch created, touched, and removed (see [`AppliedDelta`]) — the
    /// contract incremental index refresh builds on. The tracking is a
    /// few `Vec` pushes per op plus one adjacency read per removal, so
    /// it is cheap next to the graph clone an ingest already pays for.
    pub fn apply_tracked(&self, graph: &mut Graph) -> Result<AppliedDelta, DeltaError> {
        let mut delta = AppliedDelta::default();
        let mut created: Vec<NodeId> = Vec::new();
        let resolve = |r: NodeRef, created: &[NodeId], op: usize| -> Result<NodeId, DeltaError> {
            match r {
                NodeRef::Existing(id) => Ok(id),
                NodeRef::New(i) => created
                    .get(i)
                    .copied()
                    .ok_or(DeltaError::UnknownNewNode { op, index: i }),
            }
        };
        for (i, op) in self.ops.iter().enumerate() {
            let graph_err = |source: GraphError| DeltaError::Graph { op: i, source };
            match op {
                DeltaOp::AddNode { labels, props } => {
                    let id = graph.add_node(labels.iter().map(String::as_str), props.clone());
                    created.push(id);
                    delta.created.push(id);
                }
                DeltaOp::AddRel {
                    src,
                    ty,
                    dst,
                    props,
                } => {
                    let src = resolve(*src, &created, i)?;
                    let dst = resolve(*dst, &created, i)?;
                    graph
                        .add_rel(src, ty, dst, props.clone())
                        .map_err(graph_err)?;
                    delta.touched.push(src);
                    delta.touched.push(dst);
                }
                DeltaOp::SetNodeProp { node, key, value } => {
                    let node = resolve(*node, &created, i)?;
                    graph
                        .set_node_prop(node, key, value.clone())
                        .map_err(graph_err)?;
                    delta.touched.push(node);
                    delta.prop_changed.push(node);
                }
                DeltaOp::SetRelProp { rel, key, value } => {
                    graph
                        .set_rel_prop(*rel, key, value.clone())
                        .map_err(graph_err)?;
                    if let Some(r) = graph.rel(*rel) {
                        delta.touched.push(r.src);
                        delta.touched.push(r.dst);
                    }
                }
                DeltaOp::AddLabel { node, label } => {
                    let node = resolve(*node, &created, i)?;
                    graph.add_label(node, label).map_err(graph_err)?;
                    delta.touched.push(node);
                    delta.prop_changed.push(node);
                }
                DeltaOp::RemoveNode { node } => {
                    let node = resolve(*node, &created, i)?;
                    // The detach-delete severs every incident rel, so the
                    // ex-neighbors' derived descriptions change too.
                    for (_, nbr) in graph.neighbors(node, crate::graph::Direction::Both, None) {
                        delta.touched.push(nbr);
                    }
                    graph.remove_node(node).map_err(graph_err)?;
                    delta.removed.push(node);
                }
                DeltaOp::RemoveRel { rel } => {
                    if let Some(r) = graph.rel(*rel) {
                        delta.touched.push(r.src);
                        delta.touched.push(r.dst);
                    }
                    graph.remove_rel(*rel).map_err(graph_err)?;
                }
                DeltaOp::CreateIndex { label, key } => {
                    graph.create_index(label, key);
                }
            }
        }
        delta.ops_applied = self.ops.len();
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    fn seeded() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let jp = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", jp, Props::new()).unwrap();
        (g, a, jp)
    }

    #[test]
    fn batch_creates_and_wires_new_nodes() {
        let (mut g, a, jp) = seeded();
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], props!("asn" => 64500i64, "name" => "NewNet"));
        b.add_rel(x, "COUNTRY", jp, Props::new());
        b.add_rel(x, "PEERS_WITH", a, Props::new());
        b.set_node_prop(a, "name", "IIJ-renamed");
        let applied = b.apply(&mut g).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.rel_count(), 3);
        assert_eq!(
            g.node(a).unwrap().props.get("name"),
            Some(&Value::from("IIJ-renamed"))
        );
        // The new node is wired to both existing nodes.
        let new_id = g
            .nodes_with_label("AS")
            .find(|&id| g.node(id).unwrap().props.get("asn") == Some(&Value::Int(64500)))
            .unwrap();
        assert_eq!(g.degree(new_id, crate::graph::Direction::Both), 2);
    }

    #[test]
    fn unknown_new_ref_is_reported_with_op_index() {
        let (mut g, _, _) = seeded();
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], Props::new());
        b.add_rel(NodeRef::New(7), "PEERS_WITH", x, Props::new());
        let err = b.apply(&mut g).unwrap_err();
        assert_eq!(err, DeltaError::UnknownNewNode { op: 1, index: 7 });
    }

    #[test]
    fn graph_errors_carry_the_op_index() {
        let (mut g, a, _) = seeded();
        let mut b = DeltaBatch::new();
        b.set_node_prop(a, "name", "ok");
        b.remove_node(NodeId(999));
        let err = b.apply(&mut g).unwrap_err();
        assert_eq!(
            err,
            DeltaError::Graph {
                op: 1,
                source: GraphError::NodeNotFound(NodeId(999)),
            }
        );
    }

    #[test]
    fn batch_json_roundtrip() {
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS", "Tier1"], props!("asn" => 1i64));
        b.add_rel(x, "PEERS_WITH", NodeId(0), props!("since" => 2020i64));
        b.remove_rel(RelId(3));
        b.create_index("AS", "asn");
        let json = serde_json::to_string(&b).unwrap();
        let back: DeltaBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 4);
        let (mut g1, _, _) = seeded();
        let (mut g2, _, _) = seeded();
        // RelId(3) doesn't exist in the seed graph: both fail identically.
        assert_eq!(b.apply(&mut g1), back.apply(&mut g2));
    }

    #[test]
    fn apply_tracked_reports_created_touched_removed() {
        let (mut g, a, jp) = seeded();
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], props!("asn" => 64500i64));
        b.add_rel(x, "COUNTRY", jp, Props::new());
        b.set_node_prop(a, "name", "IIJ-renamed");
        let d = b.apply_tracked(&mut g).unwrap();
        assert_eq!(d.ops_applied, 3);
        assert_eq!(d.created.len(), 1);
        let new_id = d.created[0];
        // AddRel touches both endpoints; SetNodeProp touches its node.
        assert!(d.touched.contains(&new_id));
        assert!(d.touched.contains(&jp));
        assert!(d.touched.contains(&a));
        assert!(d.removed.is_empty());
        // affected() dedups and keeps only live ids.
        let affected = d.affected();
        assert_eq!(affected.len(), 3);
        assert!(affected.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn apply_tracked_distinguishes_prop_changes_from_adjacency_touches() {
        let (mut g, a, jp) = seeded();
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], props!("asn" => 64500i64));
        b.add_rel(x, "COUNTRY", jp, Props::new());
        b.set_node_prop(a, "name", "IIJ-renamed");
        b.add_label(a, "Transit");
        let d = b.apply_tracked(&mut g).unwrap();
        // Only the renamed/relabelled node's own record changed; the
        // country was brushed by adjacency but its props are intact.
        assert!(d.prop_changed.contains(&a));
        assert!(!d.prop_changed.contains(&jp));
        assert!(!d.prop_changed.contains(&d.created[0]));
        // prop_changed stays a subset of touched.
        assert!(d.prop_changed.iter().all(|id| d.touched.contains(id)));
    }

    #[test]
    fn apply_tracked_records_neighbors_of_removed_nodes() {
        let (mut g, a, jp) = seeded();
        let mut b = DeltaBatch::new();
        b.remove_node(a);
        let d = b.apply_tracked(&mut g).unwrap();
        assert_eq!(d.removed, vec![a]);
        // The country lost a COUNTRY rel when `a` was detach-deleted.
        assert!(d.touched.contains(&jp), "ex-neighbor not touched");
        // A removed node never shows up in affected().
        assert!(!d.affected().contains(&a));
        assert!(d.affected().contains(&jp));
    }

    #[test]
    fn apply_tracked_remove_rel_touches_both_endpoints() {
        let (mut g, a, jp) = seeded();
        let rel = g.neighbors(a, crate::graph::Direction::Outgoing, None)[0].0;
        let mut b = DeltaBatch::new();
        b.remove_rel(rel);
        let d = b.apply_tracked(&mut g).unwrap();
        assert!(d.touched.contains(&a));
        assert!(d.touched.contains(&jp));
        assert!(d.created.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn node_created_and_removed_in_one_batch_is_not_affected() {
        let (mut g, _, _) = seeded();
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], props!("asn" => 64501i64));
        b.remove_node(x);
        let d = b.apply_tracked(&mut g).unwrap();
        assert_eq!(d.created.len(), 1);
        assert_eq!(d.removed, d.created);
        assert!(d.affected().is_empty());
    }

    #[test]
    fn add_node_refs_count_only_add_node_ops() {
        let mut b = DeltaBatch::new();
        let x = b.add_node(["A"], Props::new());
        b.create_index("A", "k");
        b.set_node_prop(x, "k", 1i64);
        let y = b.add_node(["B"], Props::new());
        assert_eq!(x, NodeRef::New(0));
        assert_eq!(y, NodeRef::New(1));
    }
}
