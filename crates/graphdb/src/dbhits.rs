//! Thread-local db-hit accounting for PROFILE.
//!
//! A "db hit" is one unit of storage access work — the same currency
//! Neo4j's `PROFILE` reports. Graph read paths (index seeks, label and
//! full scans, adjacency expansion) credit hits to a thread-local
//! monotonic counter; a profiler brackets an operator with
//! [`current`] and takes the delta.
//!
//! The counter is thread-local (not a field on [`crate::Graph`]) so the
//! graph's `&self` read API stays untouched and concurrent readers never
//! contend. It never resets — readers subtract, they don't clear — so
//! nested or interleaved measurements on one thread stay correct.

use std::cell::Cell;

thread_local! {
    static DB_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Credits `n` db hits to the current thread. Called by graph read paths;
/// rarely needed directly.
#[inline]
pub fn add(n: u64) {
    DB_HITS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// The current thread's monotonic db-hit total. Measure a region by
/// subtracting a before-value from an after-value.
///
/// ```
/// use iyp_graphdb::{dbhits, Graph, props};
///
/// let mut g = Graph::new();
/// g.add_node(["AS"], props!("asn" => 1i64));
/// let before = dbhits::current();
/// let _all: Vec<_> = g.nodes_with_label("AS").collect();
/// assert!(dbhits::current() > before);
/// ```
#[inline]
pub fn current() -> u64 {
    DB_HITS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_per_thread() {
        let base = current();
        add(3);
        add(2);
        assert_eq!(current() - base, 5);

        let other = std::thread::spawn(|| {
            let base = current();
            add(7);
            current() - base
        })
        .join()
        .unwrap();
        assert_eq!(other, 7);
        // The spawned thread's hits did not leak into this thread.
        assert_eq!(current() - base, 5);
    }
}
