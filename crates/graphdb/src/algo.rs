//! Graph algorithms over the property graph: BFS distances, connected
//! components and PageRank.
//!
//! PageRank over the reversed DEPENDS_ON graph is how the dataset
//! generator synthesizes an AS-hegemony-style centrality score (the real
//! IYP carries IHR's AS Hegemony); BFS backs reachability checks and the
//! components are a generator self-check (the AS graph must be one
//! component).

use crate::graph::{Direction, Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Shortest hop distance from `from` to `to` following relationships of
/// the given types in `dir`, up to `max_hops`. `None` when unreachable.
pub fn bfs_distance(
    graph: &Graph,
    from: NodeId,
    to: NodeId,
    dir: Direction,
    types: Option<&[&str]>,
    max_hops: usize,
) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut seen: HashSet<NodeId> = HashSet::from([from]);
    let mut frontier = VecDeque::from([(from, 0usize)]);
    while let Some((cur, d)) = frontier.pop_front() {
        if d >= max_hops {
            continue;
        }
        for (_, nbr) in graph.neighbors(cur, dir, types) {
            if nbr == to {
                return Some(d + 1);
            }
            if seen.insert(nbr) {
                frontier.push_back((nbr, d + 1));
            }
        }
    }
    None
}

/// All nodes within `max_hops` of `from` (excluding `from` itself), with
/// their distances.
pub fn bfs_reach(
    graph: &Graph,
    from: NodeId,
    dir: Direction,
    types: Option<&[&str]>,
    max_hops: usize,
) -> HashMap<NodeId, usize> {
    let mut dist: HashMap<NodeId, usize> = HashMap::new();
    let mut frontier = VecDeque::from([(from, 0usize)]);
    let mut seen: HashSet<NodeId> = HashSet::from([from]);
    while let Some((cur, d)) = frontier.pop_front() {
        if d >= max_hops {
            continue;
        }
        for (_, nbr) in graph.neighbors(cur, dir, types) {
            if seen.insert(nbr) {
                dist.insert(nbr, d + 1);
                frontier.push_back((nbr, d + 1));
            }
        }
    }
    dist
}

/// Undirected connected components over relationships of the given types,
/// restricted to nodes carrying `label` (or all nodes when `None`).
/// Components are returned largest-first; node ids within a component are
/// ascending.
pub fn connected_components(
    graph: &Graph,
    label: Option<&str>,
    types: Option<&[&str]>,
) -> Vec<Vec<NodeId>> {
    let members: Vec<NodeId> = match label {
        Some(l) => graph.nodes_with_label(l).collect(),
        None => graph.all_nodes().collect(),
    };
    let member_set: HashSet<NodeId> = members.iter().copied().collect();
    let mut unvisited: HashSet<NodeId> = member_set.clone();
    let mut components = Vec::new();
    for &start in &members {
        if !unvisited.remove(&start) {
            continue;
        }
        let mut comp = vec![start];
        let mut frontier = VecDeque::from([start]);
        while let Some(cur) = frontier.pop_front() {
            for (_, nbr) in graph.neighbors(cur, Direction::Both, types) {
                if member_set.contains(&nbr) && unvisited.remove(&nbr) {
                    comp.push(nbr);
                    frontier.push_back(nbr);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// PageRank restricted to nodes carrying `label`, following relationships
/// of the given types in the *outgoing* direction. Standard damping;
/// dangling mass is redistributed uniformly. Returns a score per node
/// summing to ~1.
pub fn pagerank(
    graph: &Graph,
    label: &str,
    types: Option<&[&str]>,
    damping: f64,
    iterations: usize,
) -> HashMap<NodeId, f64> {
    let nodes: Vec<NodeId> = graph.nodes_with_label(label).collect();
    let n = nodes.len();
    if n == 0 {
        return HashMap::new();
    }
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Outgoing edges within the restricted node set.
    let out_edges: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&v| {
            graph
                .neighbors(v, Direction::Outgoing, types)
                .into_iter()
                .filter_map(|(_, nbr)| index.get(&nbr).copied())
                .collect()
        })
        .collect();

    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        let mut dangling = 0.0;
        for (i, edges) in out_edges.iter().enumerate() {
            if edges.is_empty() {
                dangling += rank[i];
            } else {
                let share = damping * rank[i] / edges.len() as f64;
                for &j in edges {
                    next[j] += share;
                }
            }
        }
        let dangling_share = damping * dangling / n as f64;
        for v in &mut next {
            *v += dangling_share;
        }
        rank = next;
    }
    nodes.into_iter().zip(rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;
    use crate::props::Props;

    fn chain(n: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(["N"], props!("i" => i as i64)))
            .collect();
        for w in ids.windows(2) {
            g.add_rel(w[0], "R", w[1], Props::new()).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn bfs_distance_on_chain() {
        let (g, ids) = chain(6);
        assert_eq!(
            bfs_distance(&g, ids[0], ids[5], Direction::Outgoing, Some(&["R"]), 10),
            Some(5)
        );
        assert_eq!(
            bfs_distance(&g, ids[5], ids[0], Direction::Outgoing, Some(&["R"]), 10),
            None // wrong direction
        );
        assert_eq!(
            bfs_distance(&g, ids[5], ids[0], Direction::Both, Some(&["R"]), 10),
            Some(5)
        );
        assert_eq!(
            bfs_distance(&g, ids[0], ids[0], Direction::Both, None, 10),
            Some(0)
        );
        // Hop budget respected.
        assert_eq!(
            bfs_distance(&g, ids[0], ids[5], Direction::Outgoing, Some(&["R"]), 3),
            None
        );
    }

    #[test]
    fn bfs_shortest_beats_longer_route() {
        // 0→1→2 and a direct 0→2.
        let mut g = Graph::new();
        let a = g.add_node(["N"], Props::new());
        let b = g.add_node(["N"], Props::new());
        let c = g.add_node(["N"], Props::new());
        g.add_rel(a, "R", b, Props::new()).unwrap();
        g.add_rel(b, "R", c, Props::new()).unwrap();
        g.add_rel(a, "R", c, Props::new()).unwrap();
        assert_eq!(
            bfs_distance(&g, a, c, Direction::Outgoing, None, 10),
            Some(1)
        );
    }

    #[test]
    fn bfs_reach_collects_distances() {
        let (g, ids) = chain(5);
        let reach = bfs_reach(&g, ids[0], Direction::Outgoing, Some(&["R"]), 3);
        assert_eq!(reach.len(), 3);
        assert_eq!(reach[&ids[1]], 1);
        assert_eq!(reach[&ids[3]], 3);
        assert!(!reach.contains_key(&ids[4]));
    }

    #[test]
    fn components_split_and_merge() {
        let (mut g, ids) = chain(4);
        let lonely = g.add_node(["N"], Props::new());
        let comps = connected_components(&g, Some("N"), None);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1], vec![lonely]);
        // Joining merges them.
        g.add_rel(lonely, "R", ids[0], Props::new()).unwrap();
        assert_eq!(connected_components(&g, Some("N"), None).len(), 1);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_sinks_high() {
        // Star: everyone points at the hub.
        let mut g = Graph::new();
        let hub = g.add_node(["N"], Props::new());
        let spokes: Vec<NodeId> = (0..9).map(|_| g.add_node(["N"], Props::new())).collect();
        for &s in &spokes {
            g.add_rel(s, "R", hub, Props::new()).unwrap();
        }
        let pr = pagerank(&g, "N", Some(&["R"]), 0.85, 40);
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let hub_score = pr[&hub];
        for s in &spokes {
            assert!(hub_score > pr[s] * 3.0, "hub not dominant");
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let (g, ids) = chain(3); // last node dangles
        let pr = pagerank(&g, "N", Some(&["R"]), 0.85, 50);
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pr[&ids[2]] > pr[&ids[0]], "downstream should rank higher");
    }

    #[test]
    fn pagerank_empty_label() {
        let g = Graph::new();
        assert!(pagerank(&g, "Nope", None, 0.85, 10).is_empty());
    }
}
