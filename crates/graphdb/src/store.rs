//! The versioned graph store: snapshot-isolated reads with live ingest.
//!
//! A [`GraphStore`] owns the current immutable [`GraphSnapshot`] behind a
//! swappable shared pointer. Readers call [`GraphStore::load`] **once at
//! query start** and execute the whole query against that snapshot — the
//! graph inside a published snapshot is never mutated again, so there are
//! no torn reads and no locks on the query hot path. Writers build the
//! next graph off-line (clone current + apply a [`DeltaBatch`], or a
//! full [`GraphStore::publish`]) and make it visible with a single
//! pointer swap.
//!
//! The swap itself is the only moment readers and the writer meet: the
//! read side clones an `Arc` under a briefly-held read lock (a few
//! atomic ops), and the writer holds the write lock only for the pointer
//! store. All the expensive work — cloning the graph, applying the
//! batch — happens outside any lock, so a multi-second ingest never
//! stalls a query.
//!
//! ## Versions, epochs and the query cache
//!
//! Each snapshot carries a **version** (1 for the first publish, +1 per
//! swap) and exposes its graph's write **epoch**. The store maintains
//! the invariant that a newly published snapshot's epoch is strictly
//! greater than its predecessor's whenever the data could differ
//! ([`Graph::raise_epoch_to`]), so epoch-keyed caches (see
//! `chatiyp-core`'s `QueryCache`) can never serve bytes computed against
//! one snapshot to a reader holding another.

use crate::delta::{DeltaBatch, DeltaError};
use crate::graph::Graph;
use parking_lot::{Mutex, RwLock};
use std::ops::Deref;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An immutable, versioned view of the graph.
///
/// Dereferences to [`Graph`], so every read-only `Graph` API works on a
/// snapshot unchanged; the extra state is the publish [`version`] the
/// store assigned.
///
/// [`version`]: GraphSnapshot::version
#[derive(Debug)]
pub struct GraphSnapshot {
    graph: Graph,
    version: u64,
}

impl GraphSnapshot {
    /// Wraps a graph as a snapshot at an explicit version. Mostly useful
    /// in tests and tools; live systems get snapshots from a
    /// [`GraphStore`].
    pub fn new(graph: Graph, version: u64) -> Self {
        GraphSnapshot { graph, version }
    }

    /// The store-assigned publish version (1-based; strictly increases
    /// across swaps).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The wrapped graph's write epoch — the cache-correctness token.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Unwraps into the graph (tools that want to mutate a copy).
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

impl Deref for GraphSnapshot {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        &self.graph
    }
}

/// What one publish/ingest did, returned to the caller (and serialized
/// by the server's `POST /admin/ingest`).
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Version readers saw before the swap.
    pub old_version: u64,
    /// Version readers see after the swap.
    pub new_version: u64,
    /// Ops applied (0 for a full `publish`).
    pub ops_applied: usize,
    /// Live nodes in the new snapshot.
    pub nodes: usize,
    /// Live relationships in the new snapshot.
    pub rels: usize,
    /// Time spent cloning the base snapshot for the writer. With the
    /// paged copy-on-write store this is a pointer-copy of the page
    /// tables, label shards and index partition tables — O(pages),
    /// hundreds of microseconds even at 16× the generated dataset, and
    /// independent of batch size (the pre-paged store buried an
    /// O(graph) deep copy of every record here, inside `apply`).
    pub clone: Duration,
    /// Time spent applying the batch to the clone, outside any lock.
    /// O(delta): only pages touched by the batch are path-copied.
    pub apply: Duration,
    /// Time the pointer swap held the write lock — the only window in
    /// which a reader's `load` can wait.
    pub swap: Duration,
}

/// The swappable holder of the current [`GraphSnapshot`].
///
/// Cheap to share (`Arc<GraphStore>`); see the module docs for the
/// concurrency model.
pub struct GraphStore {
    current: RwLock<Arc<GraphSnapshot>>,
    /// Serializes writers: batches are applied one at a time, each on
    /// top of the snapshot the previous one published.
    writer: Mutex<()>,
}

impl GraphStore {
    /// Publishes `graph` as version 1 and returns the store.
    pub fn new(graph: Graph) -> Self {
        GraphStore {
            current: RwLock::new(Arc::new(GraphSnapshot::new(graph, 1))),
            writer: Mutex::new(()),
        }
    }

    /// Publishes an already-versioned snapshot as the store's initial
    /// state — the recovery path: a checkpoint reloaded from disk (or a
    /// checkpoint-plus-replayed-WAL graph) resumes its version sequence
    /// instead of resetting to 1, so WAL records at or below the
    /// snapshot's version are recognizably already applied.
    pub fn from_snapshot(snapshot: GraphSnapshot) -> Self {
        GraphStore {
            current: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
        }
    }

    /// Acquires the current snapshot. Call once at query start and use
    /// the returned handle for the whole query — later swaps don't
    /// affect it, and dropping it releases the old graph's memory once
    /// the last reader finishes.
    pub fn load(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// The current published version.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }

    /// Replaces the graph wholesale (a re-generated dataset, a snapshot
    /// file reload). The incoming graph's epoch is raised above the old
    /// snapshot's if needed, so cache entries keyed to the old snapshot
    /// can never validate against the new one.
    pub fn publish(&self, graph: Graph) -> SwapReport {
        let _w = self.writer.lock();
        self.publish_locked(graph, 0, Duration::ZERO, Duration::ZERO)
    }

    /// Applies `batch` to a copy of the current snapshot and publishes
    /// the result. Readers keep executing against the old snapshot for
    /// the whole apply; a failing op discards the copy and publishes
    /// nothing.
    pub fn ingest(&self, batch: &DeltaBatch) -> Result<SwapReport, DeltaError> {
        let _w = self.writer.lock();
        let base = self.load();
        let t0 = Instant::now();
        // COW clone: copies page tables, shares every page.
        let mut next = base.graph.clone();
        let cloned = t0.elapsed();
        let ops_applied = batch.apply(&mut next)?;
        let apply = t0.elapsed() - cloned;
        Ok(self.publish_locked(next, ops_applied, cloned, apply))
    }

    /// Publishes a graph the *caller* already built off-lock (clone +
    /// batch apply done outside this call), attributing `ops_applied`
    /// and the caller-measured `clone`/`apply` durations to the report.
    /// This is
    /// the entry point for publishers that must swap other derived
    /// state alongside the graph (the pipeline's retrieval index): only
    /// the pointer exchange happens here, so the caller can bracket it
    /// with its own swaps under its own lock.
    ///
    /// The caller is responsible for serializing its prepare→publish
    /// sequences (the pipeline holds its own ingest mutex); interleaving
    /// two prepares based on the same snapshot would lose the first
    /// publish's data, exactly as with any read-modify-write.
    pub fn publish_prepared(
        &self,
        graph: Graph,
        ops_applied: usize,
        clone: Duration,
        apply: Duration,
    ) -> SwapReport {
        let _w = self.writer.lock();
        self.publish_locked(graph, ops_applied, clone, apply)
    }

    /// Swaps `graph` in as the next version. Caller holds `writer`.
    fn publish_locked(
        &self,
        mut graph: Graph,
        ops_applied: usize,
        clone: Duration,
        apply: Duration,
    ) -> SwapReport {
        let old = self.load();
        // Epoch monotonicity across swaps: an arbitrary published graph
        // (or an ingest that only re-added existing labels) may carry an
        // epoch at or below the old snapshot's while holding different
        // data. Raising it guarantees epoch-keyed cache entries recorded
        // against the old snapshot miss against the new one.
        graph.raise_epoch_to(old.epoch() + 1);
        let next = Arc::new(GraphSnapshot::new(graph, old.version + 1));
        let report = SwapReport {
            old_version: old.version,
            new_version: next.version,
            ops_applied,
            nodes: next.node_count(),
            rels: next.rel_count(),
            clone,
            apply,
            swap: Duration::ZERO,
        };
        let t0 = Instant::now();
        *self.current.write() = next;
        SwapReport {
            swap: t0.elapsed(),
            ..report
        }
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cur = self.load();
        f.debug_struct("GraphStore")
            .field("version", &cur.version())
            .field("epoch", &cur.epoch())
            .field("nodes", &cur.node_count())
            .finish()
    }
}

// Shared by server workers, the pipeline, and ingest writers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphStore>();
    assert_send_sync::<GraphSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;
    use crate::value::Value;
    use crate::Props;

    fn seed_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let jp = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", jp, Props::new()).unwrap();
        g
    }

    fn grow_batch(asn: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        let x = b.add_node(["AS"], props!("asn" => asn));
        b.add_rel(x, "PEERS_WITH", crate::graph::NodeId(0), Props::new());
        b
    }

    #[test]
    fn first_publish_is_version_one() {
        let store = GraphStore::new(seed_graph());
        let snap = store.load();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.node_count(), 2);
        assert_eq!(store.version(), 1);
    }

    #[test]
    fn ingest_publishes_a_new_version_and_old_readers_keep_theirs() {
        let store = GraphStore::new(seed_graph());
        let before = store.load();
        let report = store.ingest(&grow_batch(64500)).unwrap();
        assert_eq!((report.old_version, report.new_version), (1, 2));
        assert_eq!(report.ops_applied, 2);
        assert_eq!(report.nodes, 3);

        let after = store.load();
        assert_eq!(after.version(), 2);
        assert_eq!(after.node_count(), 3);
        // The pre-swap handle still sees the old world, untouched.
        assert_eq!(before.version(), 1);
        assert_eq!(before.node_count(), 2);
        assert!(after.epoch() > before.epoch());
    }

    #[test]
    fn failed_ingest_publishes_nothing() {
        let store = GraphStore::new(seed_graph());
        let mut bad = grow_batch(64501);
        bad.remove_node(crate::graph::NodeId(999));
        let err = store.ingest(&bad).unwrap_err();
        assert!(matches!(err, DeltaError::Graph { op: 2, .. }));
        let snap = store.load();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.node_count(), 2, "partial batch leaked into a snapshot");
    }

    #[test]
    fn publish_raises_a_regressing_epoch() {
        let store = GraphStore::new(seed_graph());
        // Advance the live snapshot's epoch well past a fresh graph's.
        for i in 0..10 {
            store.ingest(&grow_batch(64510 + i)).unwrap();
        }
        let old_epoch = store.load().epoch();
        // A freshly built graph has a small epoch; publishing it would
        // let old cache entries validate if the store didn't raise it.
        let fresh = seed_graph();
        assert!(fresh.epoch() < old_epoch);
        let report = store.publish(fresh);
        let snap = store.load();
        assert!(snap.epoch() > old_epoch, "epoch regressed across publish");
        assert_eq!(snap.version(), report.new_version);
        assert_eq!(snap.node_count(), 2);
    }

    #[test]
    fn concurrent_readers_see_a_consistent_world_during_ingest() {
        let store = Arc::new(GraphStore::new(seed_graph()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                readers.push(s.spawn(move || {
                    let mut observed = std::collections::BTreeSet::new();
                    // One extra iteration after the stop flag flips, so
                    // every reader is guaranteed to observe the final
                    // published version (the writer raises the flag only
                    // after its last swap).
                    let mut done = false;
                    while !done {
                        done = stop.load(std::sync::atomic::Ordering::Acquire);
                        let snap = store.load();
                        // Node count is a pure function of the version:
                        // seed has 2 nodes, each batch adds exactly one.
                        assert_eq!(snap.node_count() as u64, 1 + snap.version());
                        observed.insert(snap.version());
                    }
                    observed
                }));
            }
            for i in 0..50 {
                store.ingest(&grow_batch(65000 + i)).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            let all: std::collections::BTreeSet<u64> = readers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            assert!(all.contains(&51), "no reader saw the final version");
        });
        assert_eq!(store.version(), 51);
    }

    #[test]
    fn snapshot_derefs_to_graph() {
        let snap = GraphSnapshot::new(seed_graph(), 7);
        assert_eq!(snap.version(), 7);
        assert_eq!(snap.node_count(), 2);
        assert_eq!(snap.label_count("AS"), 1);
        assert_eq!(
            snap.graph()
                .node(crate::graph::NodeId(0))
                .unwrap()
                .props
                .get("asn"),
            Some(&Value::Int(2497))
        );
    }
}
