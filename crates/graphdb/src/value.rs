//! The dynamically-typed value model shared by the graph store and the
//! Cypher executor.
//!
//! `Value` mirrors the openCypher value space: null, booleans, 64-bit
//! integers, 64-bit floats, strings, lists and maps. Comparison and
//! arithmetic follow Cypher semantics where they matter for query results
//! (e.g. `null` propagates through arithmetic, integers and floats compare
//! numerically, ordering across disparate types is total so `ORDER BY` is
//! well-defined).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed property / query value.
///
/// Serialized untagged, so results and snapshots read as plain JSON
/// (`5`, `"IIJ"`, `[1, 2]`) rather than `{"Int": 5}`.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
#[serde(untagged)]
pub enum Value {
    /// Absence of a value. Propagates through most operations.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list of values.
    List(Vec<Value>),
    /// String-keyed map of values.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Cypher truthiness: only `Bool(true)` is true; `Null` is "unknown"
    /// and treated as not-true by filters.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float view of a numeric value (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map payload if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Is this a numeric value (int or float)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// The Cypher type name of the value, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "INTEGER",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "STRING",
            Value::List(_) => "LIST",
            Value::Map(_) => "MAP",
        }
    }

    /// Cypher equality: `null = anything` is null (here: `None`);
    /// ints and floats compare numerically.
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Float(b)) => Some((*a as f64) == *b),
            (Value::Float(a), Value::Int(b)) => Some(*a == (*b as f64)),
            (a, b) => Some(a.strict_eq(b)),
        }
    }

    fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.strict_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.strict_eq(vb))
            }
            _ => false,
        }
    }

    /// Cypher ordering comparison for `<`, `>` etc.: numeric across
    /// int/float, lexicographic for strings; incomparable type pairs and
    /// nulls yield `None`.
    pub fn cypher_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cypher_cmp(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    /// Total ordering used by `ORDER BY`: nulls sort last, then by a fixed
    /// type rank, then within-type. Always returns an ordering.
    pub fn order_key_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Map(_) => 0,
                Value::List(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
                Value::Int(_) | Value::Float(_) => 4,
                Value::Null => 5,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.order_key_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                let mut ia = a.iter();
                let mut ib = b.iter();
                loop {
                    match (ia.next(), ib.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let c = ka.cmp(kb).then_with(|| va.order_key_cmp(vb));
                            if c != Ordering::Equal {
                                return c;
                            }
                        }
                    }
                }
            }
            (a, b) => {
                // Both numeric.
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// `+` with Cypher semantics: numeric addition, string and list
    /// concatenation; null propagates.
    pub fn add(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            (Value::Str(a), b) if b.is_numeric() => Ok(Value::Str(format!("{a}{b}"))),
            (a, Value::Str(b)) if a.is_numeric() => Ok(Value::Str(format!("{a}{b}"))),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::List(out))
            }
            (Value::List(a), b) => {
                let mut out = a.clone();
                out.push(b.clone());
                Ok(Value::List(out))
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                Ok(Value::Float(a.as_f64().unwrap() + b.as_f64().unwrap()))
            }
            (a, b) => Err(ValueError::type_mismatch("+", a, b)),
        }
    }

    /// `-` with null propagation.
    pub fn sub(&self, other: &Value) -> Result<Value, ValueError> {
        self.numeric_op(other, "-", |a, b| a.wrapping_sub(b), |a, b| a - b)
    }

    /// `*` with null propagation.
    pub fn mul(&self, other: &Value) -> Result<Value, ValueError> {
        self.numeric_op(other, "*", |a, b| a.wrapping_mul(b), |a, b| a * b)
    }

    /// `/`: integer division when both sides are ints, float otherwise.
    pub fn div(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let denom = b.as_f64().unwrap();
                if denom == 0.0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Ok(Value::Float(a.as_f64().unwrap() / denom))
                }
            }
            (a, b) => Err(ValueError::type_mismatch("/", a, b)),
        }
    }

    /// `%` modulo.
    pub fn rem(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                Ok(Value::Float(a.as_f64().unwrap() % b.as_f64().unwrap()))
            }
            (a, b) => Err(ValueError::type_mismatch("%", a, b)),
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> Result<Value, ValueError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(ValueError::TypeMismatch {
                op: "-".into(),
                detail: format!("cannot negate {}", v.type_name()),
            }),
        }
    }

    fn numeric_op(
        &self,
        other: &Value,
        op: &'static str,
        int_op: fn(i64, i64) -> i64,
        float_op: fn(f64, f64) -> f64,
    ) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(int_op(*a, *b))),
            (a, b) if a.is_numeric() && b.is_numeric() => Ok(Value::Float(float_op(
                a.as_f64().unwrap(),
                b.as_f64().unwrap(),
            ))),
            (a, b) => Err(ValueError::type_mismatch(op, a, b)),
        }
    }
}

/// Errors raised by value-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// Operands had incompatible types for the operator.
    TypeMismatch {
        /// Operator symbol.
        op: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Division or modulo by zero.
    DivisionByZero,
}

impl ValueError {
    fn type_mismatch(op: &str, a: &Value, b: &Value) -> Self {
        ValueError::TypeMismatch {
            op: op.to_string(),
            detail: format!("{} {} {}", a.type_name(), op, b.type_name()),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { op, detail } => {
                write!(f, "type mismatch for operator '{op}': {detail}")
            }
            ValueError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ValueError {}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (nulls equal each other) — used by tests,
        // grouping keys and DISTINCT, not by Cypher `=` (see `cypher_eq`).
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (a, b) => a.strict_eq(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "\"{s}\"")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "]")
            }
            Value::Map(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "{k}: \"{s}\"")?,
                        other => write!(f, "{k}: {other}")?,
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

/// A hashable, orderable normalization of a `Value`, suitable as an index
/// key or grouping key. Floats are keyed by their bit pattern after
/// normalizing `-0.0` to `0.0`; whole floats that fit in `i64` are keyed as
/// integers so `1` and `1.0` land in the same group (matching `cypher_eq`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueKey {
    /// Null key.
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key (also used for whole floats).
    Int(i64),
    /// Float bit pattern for non-integral floats.
    FloatBits(u64),
    /// String key.
    Str(String),
    /// List key.
    List(Vec<ValueKey>),
    /// Map key.
    Map(Vec<(String, ValueKey)>),
}

impl ValueKey {
    /// Builds the key for a value.
    pub fn of(v: &Value) -> ValueKey {
        match v {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                if f.fract() == 0.0 && f.abs() < (i64::MAX as f64) {
                    ValueKey::Int(f as i64)
                } else {
                    ValueKey::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::List(items) => ValueKey::List(items.iter().map(ValueKey::of).collect()),
            Value::Map(m) => ValueKey::Map(
                m.iter()
                    .map(|(k, v)| (k.clone(), ValueKey::of(v)))
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).sub(&Value::Null).unwrap().is_null());
        assert!(Value::Null.mul(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn int_float_mixed_arithmetic() {
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        );
        assert_eq!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        );
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(
            Value::from("AS").add(&Value::Int(2497)).unwrap(),
            Value::from("AS2497")
        );
    }

    #[test]
    fn list_concatenation_and_append() {
        let l = Value::from(vec![1i64, 2]);
        assert_eq!(
            l.add(&Value::from(vec![3i64])).unwrap(),
            Value::from(vec![1i64, 2, 3])
        );
        assert_eq!(
            l.add(&Value::Int(3)).unwrap(),
            Value::from(vec![1i64, 2, 3])
        );
    }

    #[test]
    fn cypher_eq_numeric_coercion() {
        assert_eq!(Value::Int(1).cypher_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Int(1).cypher_eq(&Value::Float(1.5)), Some(false));
        assert_eq!(Value::Null.cypher_eq(&Value::Int(1)), None);
    }

    #[test]
    fn cypher_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).cypher_cmp(&Value::from("a")), None);
        assert_eq!(
            Value::Int(1).cypher_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("a").cypher_cmp(&Value::from("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn order_key_total_order_nulls_last() {
        let mut vals = [
            Value::Null,
            Value::Int(3),
            Value::from("x"),
            Value::Float(1.5),
        ];
        vals.sort_by(|a, b| a.order_key_cmp(b));
        assert_eq!(vals.last().unwrap(), &Value::Null);
        assert_eq!(vals[0], Value::from("x"));
    }

    #[test]
    fn value_key_unifies_int_and_whole_float() {
        assert_eq!(
            ValueKey::of(&Value::Int(5)),
            ValueKey::of(&Value::Float(5.0))
        );
        assert_ne!(
            ValueKey::of(&Value::Int(5)),
            ValueKey::of(&Value::Float(5.5))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from(vec!["a", "b"]).to_string(), "[\"a\", \"b\"]");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }
}
