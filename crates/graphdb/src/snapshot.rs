//! Graph snapshots: JSON serialization to disk and back.
//!
//! The on-disk format is the serde representation of [`Graph`]; transient
//! lookup tables are rebuilt on load. Snapshots make experiment runs
//! reproducible without regenerating the synthetic dataset.

use crate::graph::Graph;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised by snapshot save/load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The snapshot file was not valid.
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
        }
    }
}
impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Serializes the graph to a JSON string.
pub fn to_json(graph: &Graph) -> Result<String, SnapshotError> {
    serde_json::to_string(graph).map_err(|e| SnapshotError::Format(e.to_string()))
}

/// Deserializes a graph from a JSON string.
pub fn from_json(json: &str) -> Result<Graph, SnapshotError> {
    let mut g: Graph =
        serde_json::from_str(json).map_err(|e| SnapshotError::Format(e.to_string()))?;
    g.after_deserialize();
    Ok(g)
}

/// Writes a snapshot file.
pub fn save(graph: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    fs::write(path, to_json(graph)?)?;
    Ok(())
}

/// Reads a snapshot file.
pub fn load(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use crate::props;
    use crate::value::Value;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64));
        let b = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", b, props!("reference_org" => "NRO"))
            .unwrap();
        g.create_index("AS", "asn");

        let back = from_json(&to_json(&g).unwrap()).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.rel_count(), 1);
        // Interner lookups work after rebuild.
        assert_eq!(back.nodes_with_label("AS").count(), 1);
        assert_eq!(
            back.neighbors(a, Direction::Outgoing, Some(&["COUNTRY"]))
                .len(),
            1
        );
        // Index survives.
        assert_eq!(
            back.index_lookup("AS", "asn", &Value::Int(2497)),
            Some(vec![a])
        );
    }

    #[test]
    fn bad_json_is_a_format_error() {
        match from_json("{not json") {
            Err(SnapshotError::Format(_)) => {}
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 1i64));
        let dir = std::env::temp_dir().join("iyp_graphdb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.node_count(), 1);
        std::fs::remove_file(path).ok();
    }
}
