//! Graph snapshots: JSON serialization to disk and back.
//!
//! Two on-disk formats live here:
//!
//! * the **bare graph** format ([`to_json`]/[`from_json`]) — the serde
//!   representation of [`Graph`], including its write epoch, so a
//!   save → load round-trip cannot rewind the counter the query cache
//!   keys on;
//! * the **versioned envelope** ([`snapshot_to_json`] /
//!   [`snapshot_from_json`]) — `{"version": v, "graph": {…}}`, which
//!   additionally preserves the [`GraphSnapshot`]'s store-assigned
//!   publish version so a server restarted from disk resumes the version
//!   sequence instead of resetting to 1.
//!
//! Transient lookup tables are rebuilt on load. Snapshots make
//! experiment runs reproducible without regenerating the synthetic
//! dataset.

use crate::graph::Graph;
use crate::store::GraphSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Errors raised by snapshot save/load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The snapshot file was not valid.
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
        }
    }
}
impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl SnapshotError {
    /// Prefixes the error message with the file it came from, so a
    /// corrupt snapshot among many is identifiable from the error alone.
    fn at(self, path: &Path) -> Self {
        match self {
            SnapshotError::Io(e) => {
                SnapshotError::Io(io::Error::new(e.kind(), format!("{}: {e}", path.display())))
            }
            SnapshotError::Format(msg) => {
                SnapshotError::Format(format!("{}: {msg}", path.display()))
            }
        }
    }
}

/// The sibling temp path used by atomic writes: `<name>.tmp` in the same
/// directory (same filesystem, so the rename is atomic).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write a sibling temp file,
/// fsync it, rename over the target. A crash at any point leaves either
/// the old file or the new one — never a torn mix — because the rename
/// is the only step that touches the destination name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    let result = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if let Err(e) = result {
        // Don't leave a stale temp file behind a failed save.
        fs::remove_file(&tmp).ok();
        return Err(SnapshotError::Io(e).at(path));
    }
    // Make the rename itself durable on filesystems that need a
    // directory sync (best-effort: read-only open can fail on exotic
    // mounts without invalidating the write).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Serializes the graph to a JSON string.
pub fn to_json(graph: &Graph) -> Result<String, SnapshotError> {
    serde_json::to_string(graph).map_err(|e| SnapshotError::Format(e.to_string()))
}

/// Deserializes a graph from a JSON string.
pub fn from_json(json: &str) -> Result<Graph, SnapshotError> {
    let mut g: Graph =
        serde_json::from_str(json).map_err(|e| SnapshotError::Format(e.to_string()))?;
    g.after_deserialize();
    Ok(g)
}

/// Writes a snapshot file atomically (temp file + fsync + rename): a
/// crash mid-save can never tear an existing snapshot.
pub fn save(graph: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    write_atomic(path.as_ref(), to_json(graph)?.as_bytes())
}

/// Reads the file as text, classifying invalid UTF-8 as *content*
/// corruption ([`SnapshotError::Format`]) rather than an I/O failure —
/// a bit-flipped snapshot is a bad snapshot, not a broken disk.
fn read_text(path: &Path) -> Result<String, SnapshotError> {
    let bytes = fs::read(path).map_err(|e| SnapshotError::Io(e).at(path))?;
    String::from_utf8(bytes)
        .map_err(|e| SnapshotError::Format(format!("not valid utf-8: {e}")).at(path))
}

/// Reads a snapshot file. Errors (I/O or format) name the offending
/// path; truncated or bit-flipped payloads come back as
/// [`SnapshotError::Format`], never a panic.
pub fn load(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let path = path.as_ref();
    from_json(&read_text(path)?).map_err(|e| e.at(path))
}

/// The versioned envelope: the graph plus the publish version the store
/// assigned to the snapshot it was taken from.
#[derive(Serialize, Deserialize)]
struct VersionedEnvelope {
    version: u64,
    graph: Graph,
}

/// Serializes a [`GraphSnapshot`] (graph + publish version) to JSON.
pub fn snapshot_to_json(snapshot: &GraphSnapshot) -> Result<String, SnapshotError> {
    let env = VersionedEnvelope {
        version: snapshot.version(),
        graph: snapshot.graph().clone(),
    };
    serde_json::to_string(&env).map_err(|e| SnapshotError::Format(e.to_string()))
}

/// Deserializes a [`GraphSnapshot`] from the versioned envelope format.
pub fn snapshot_from_json(json: &str) -> Result<GraphSnapshot, SnapshotError> {
    let mut env: VersionedEnvelope =
        serde_json::from_str(json).map_err(|e| SnapshotError::Format(e.to_string()))?;
    env.graph.after_deserialize();
    Ok(GraphSnapshot::new(env.graph, env.version))
}

/// Writes a versioned snapshot file atomically (temp file + fsync +
/// rename) — the checkpoint write path, where tearing the previous
/// checkpoint would destroy the only recovery base.
pub fn save_snapshot(
    snapshot: &GraphSnapshot,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    write_atomic(path.as_ref(), snapshot_to_json(snapshot)?.as_bytes())
}

/// Reads a versioned snapshot file. Errors name the offending path;
/// corrupt payloads are [`SnapshotError::Format`], never a panic.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<GraphSnapshot, SnapshotError> {
    let path = path.as_ref();
    snapshot_from_json(&read_text(path)?).map_err(|e| e.at(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use crate::props;
    use crate::value::Value;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64));
        let b = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", b, props!("reference_org" => "NRO"))
            .unwrap();
        g.create_index("AS", "asn");

        let back = from_json(&to_json(&g).unwrap()).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.rel_count(), 1);
        // Interner lookups work after rebuild.
        assert_eq!(back.nodes_with_label("AS").count(), 1);
        assert_eq!(
            back.neighbors(a, Direction::Outgoing, Some(&["COUNTRY"]))
                .len(),
            1
        );
        // Index survives.
        assert_eq!(
            back.index_lookup("AS", "asn", &Value::Int(2497)),
            Some(vec![a])
        );
    }

    /// Regression (PR 5): a save → mutate → load round-trip must not
    /// rewind the write epoch, or an epoch-keyed cache could serve bytes
    /// computed against the pre-save graph to readers of the reloaded
    /// one.
    #[test]
    fn epoch_survives_save_mutate_load() {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 1i64));
        g.add_node(["AS"], props!("asn" => 2i64));
        let saved_epoch = g.epoch();
        assert!(saved_epoch > 0);
        let json = to_json(&g).unwrap();

        // Mutations after the save advance the live graph's epoch...
        g.set_node_prop(a, "asn", 99i64).unwrap();
        assert!(g.epoch() > saved_epoch);

        // ...and the reload resumes from the saved epoch, not from 0.
        let back = from_json(&json).unwrap();
        assert_eq!(back.epoch(), saved_epoch, "reload rewound the epoch");

        // Further writes on the reloaded graph keep advancing it.
        let mut back = back;
        back.set_node_prop(a, "asn", 100i64).unwrap();
        assert!(back.epoch() > saved_epoch);
    }

    /// Pre-epoch snapshot files (no `epoch` field) still load, at epoch 0.
    #[test]
    fn legacy_snapshot_without_epoch_loads_at_zero() {
        let g = {
            let mut g = Graph::new();
            g.add_node(["AS"], props!("asn" => 1i64));
            g
        };
        let mut v: serde_json::Value = serde_json::from_str(&to_json(&g).unwrap()).unwrap();
        if let serde_json::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "epoch");
        }
        let back = from_json(&v.to_string()).unwrap();
        assert_eq!(back.epoch(), 0);
        assert_eq!(back.node_count(), 1);
    }

    /// The versioned envelope preserves both the publish version and the
    /// epoch across a round-trip.
    #[test]
    fn versioned_envelope_roundtrip() {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 2497i64));
        g.create_index("AS", "asn");
        let epoch = g.epoch();
        let snap = crate::store::GraphSnapshot::new(g, 17);

        let back = snapshot_from_json(&snapshot_to_json(&snap).unwrap()).unwrap();
        assert_eq!(back.version(), 17);
        assert_eq!(back.epoch(), epoch);
        assert_eq!(back.node_count(), 1);
        // Interner + index survive through the envelope too.
        assert_eq!(
            back.index_lookup("AS", "asn", &Value::Int(2497))
                .map(|ids| ids.len()),
            Some(1)
        );
    }

    /// A reloaded snapshot republished into a store can never regress
    /// the epoch a cache already observed: the store raises it.
    #[test]
    fn reloaded_snapshot_republish_keeps_epoch_monotonic() {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 1i64));
        let json = to_json(&g).unwrap();

        let store = crate::store::GraphStore::new(g);
        // The live graph moves on past the saved file.
        let mut batch = crate::delta::DeltaBatch::new();
        batch.add_node(["AS"], props!("asn" => 2i64));
        for _ in 0..5 {
            store.ingest(&batch).unwrap();
        }
        let live_epoch = store.load().epoch();

        // Restoring the old file must not take the epoch backwards.
        let reloaded = from_json(&json).unwrap();
        assert!(reloaded.epoch() < live_epoch);
        store.publish(reloaded);
        assert!(store.load().epoch() > live_epoch);
    }

    /// Rewrites a paged-layout graph JSON value into the legacy flat
    /// layout the pre-paged store wrote: `nodes`/`rels` as one flat slot
    /// array instead of `{"page_size", "pages"}`. Label members and index
    /// entries already serialize legacy-identically.
    fn flatten_to_legacy(v: &mut serde_json::Value) {
        let serde_json::Value::Map(entries) = v else {
            panic!("graph json is not a map");
        };
        for (k, val) in entries.iter_mut() {
            if k != "nodes" && k != "rels" {
                continue;
            }
            let Some(serde_json::Value::Seq(pages)) = val.get("pages").cloned() else {
                panic!("`{k}` is not in the paged layout");
            };
            let mut flat = Vec::new();
            for page in pages {
                match page {
                    serde_json::Value::Seq(slots) => flat.extend(slots),
                    other => panic!("page is not an array: {other:?}"),
                }
            }
            *val = serde_json::Value::Seq(flat);
        }
    }

    /// Snapshot files written by the pre-paged store (flat `nodes`/`rels`
    /// slot arrays) still load, and re-saving them produces the canonical
    /// paged layout with identical content.
    #[test]
    fn legacy_flat_snapshot_loads_identically() {
        let mut g = Graph::new();
        for i in 0..300i64 {
            g.add_node(["AS"], props!("asn" => i));
        }
        let a = crate::graph::NodeId(0);
        let b = crate::graph::NodeId(1);
        g.add_rel(a, "PEERS_WITH", b, props!("since" => 2020i64))
            .unwrap();
        g.create_index("AS", "asn");
        g.remove_node(crate::graph::NodeId(2)).unwrap(); // a tombstone
        let paged_json = to_json(&g).unwrap();

        let mut v: serde_json::Value = serde_json::from_str(&paged_json).unwrap();
        flatten_to_legacy(&mut v);
        let legacy_json = v.to_string();
        assert_ne!(legacy_json, paged_json);

        let back = from_json(&legacy_json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.rel_count(), 1);
        assert_eq!(back.epoch(), g.epoch());
        assert!(back.node(crate::graph::NodeId(2)).is_none());
        assert_eq!(
            back.index_lookup("AS", "asn", &Value::Int(250)),
            Some(vec![crate::graph::NodeId(250)])
        );
        assert_eq!(
            to_json(&back).unwrap(),
            paged_json,
            "legacy load re-saves differently from the paged original"
        );
    }

    /// The versioned envelope path also accepts legacy flat payloads.
    #[test]
    fn legacy_flat_versioned_envelope_loads() {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 2497i64));
        let snap = crate::store::GraphSnapshot::new(g, 9);
        let mut v: serde_json::Value =
            serde_json::from_str(&snapshot_to_json(&snap).unwrap()).unwrap();
        let serde_json::Value::Map(entries) = &mut v else {
            panic!("envelope is not a map");
        };
        let graph_v = entries
            .iter_mut()
            .find(|(k, _)| k == "graph")
            .map(|(_, v)| v)
            .unwrap();
        flatten_to_legacy(graph_v);
        let back = snapshot_from_json(&v.to_string()).unwrap();
        assert_eq!(back.version(), 9);
        assert_eq!(back.node_count(), 1);
    }

    /// A paged snapshot reloads byte-identically: save → load → save is a
    /// fixed point.
    #[test]
    fn paged_snapshot_resave_is_byte_identical() {
        let mut g = Graph::new();
        for i in 0..600i64 {
            g.add_node(["AS"], props!("asn" => i, "name" => format!("AS{i}")));
        }
        g.create_index("AS", "asn");
        g.remove_node(crate::graph::NodeId(3)).unwrap();
        let json = to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(to_json(&back).unwrap(), json);
    }

    #[test]
    fn bad_json_is_a_format_error() {
        match from_json("{not json") {
            Err(SnapshotError::Format(_)) => {}
            other => panic!("expected format error, got {other:?}"),
        }
    }

    fn fresh_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iyp_graphdb_snapshot_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn two_node_snapshot() -> crate::store::GraphSnapshot {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        g.add_node(["Country"], props!("country_code" => "JP"));
        g.create_index("AS", "asn");
        crate::store::GraphSnapshot::new(g, 3)
    }

    /// Regression (PR 10 satellite): a failure mid-save must leave the
    /// previously saved file intact — the save writes a sibling temp
    /// file and only renames on success. The failure is simulated by
    /// planting a *directory* at the temp path, which makes the temp
    /// file creation (the first write step) fail.
    #[test]
    fn failed_save_leaves_old_snapshot_intact() {
        let dir = fresh_dir("atomic");
        let path = dir.join("checkpoint.json");
        let snap = two_node_snapshot();
        save_snapshot(&snap, &path).unwrap();
        let original = std::fs::read_to_string(&path).unwrap();

        std::fs::create_dir(dir.join("checkpoint.json.tmp")).unwrap();
        let mut g2 = snap.graph().clone();
        g2.add_node(["AS"], props!("asn" => 1i64));
        let bigger = crate::store::GraphSnapshot::new(g2, 4);
        let err = save_snapshot(&bigger, &path).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(
            err.to_string().contains("checkpoint.json"),
            "error does not name the target: {err}"
        );

        // The old file is byte-for-byte untouched and still loads.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), original);
        assert_eq!(load_snapshot(&path).unwrap().version(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A successful save cleans up after itself and fully replaces the
    /// old content (no stale `.tmp` left behind, new bytes visible).
    #[test]
    fn atomic_save_replaces_and_leaves_no_temp() {
        let dir = fresh_dir("atomic_ok");
        let path = dir.join("checkpoint.json");
        save_snapshot(&two_node_snapshot(), &path).unwrap();
        let mut g2 = Graph::new();
        g2.add_node(["AS"], props!("asn" => 9i64));
        save_snapshot(&crate::store::GraphSnapshot::new(g2, 7), &path).unwrap();
        assert_eq!(load_snapshot(&path).unwrap().version(), 7);
        assert!(
            !dir.join("checkpoint.json.tmp").exists(),
            "temp file left behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite hardening: every strict prefix of a snapshot file (a
    /// byte-chopped write, pre-atomicity) must come back as a `Format`
    /// error naming the path — never a panic, never a partial graph.
    #[test]
    fn truncated_snapshot_files_are_format_errors_with_path() {
        let dir = fresh_dir("truncated");
        let path = dir.join("checkpoint.json");
        let snap = two_node_snapshot();
        save_snapshot(&snap, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let chopped = dir.join("chopped.json");
        // Every strict prefix leaves the top-level JSON object unclosed.
        let step = (full.len() / 60).max(1);
        for cut in (0..full.len()).step_by(step) {
            std::fs::write(&chopped, &full[..cut]).unwrap();
            match load_snapshot(&chopped) {
                Err(SnapshotError::Format(msg)) => {
                    assert!(
                        msg.contains("chopped.json"),
                        "error at cut {cut} does not name the path: {msg}"
                    );
                }
                Ok(_) => panic!("truncation at {cut} bytes loaded successfully"),
                Err(other) => panic!("truncation at {cut} gave non-format error: {other}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite hardening: single-bit flips anywhere in the payload
    /// must either still load (the flip landed in a string literal) or
    /// fail with `Format` — never panic, and never an `Io` error dressed
    /// up as success.
    #[test]
    fn bit_flipped_snapshot_files_never_panic() {
        let dir = fresh_dir("bitflip");
        let path = dir.join("checkpoint.json");
        save_snapshot(&two_node_snapshot(), &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let flipped = dir.join("flipped.json");
        let step = (full.len() / 200).max(1);
        let mut format_errors = 0;
        for pos in (0..full.len()).step_by(step) {
            for bit in [0, 3, 7] {
                let mut bytes = full.clone();
                bytes[pos] ^= 1 << bit;
                std::fs::write(&flipped, &bytes).unwrap();
                match load_snapshot(&flipped) {
                    Ok(_) => {}
                    Err(SnapshotError::Format(msg)) => {
                        format_errors += 1;
                        assert!(
                            msg.contains("flipped.json"),
                            "flip at {pos}/{bit} does not name the path: {msg}"
                        );
                    }
                    Err(other) => panic!("flip at {pos}/{bit} gave non-format error: {other}"),
                }
            }
        }
        assert!(format_errors > 0, "no flip produced a format error");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A structurally valid JSON value that is not a snapshot envelope is
    /// a `Format` error too (e.g. the bare-graph format fed to the
    /// envelope loader).
    #[test]
    fn wrong_shape_is_a_format_error_with_path() {
        let dir = fresh_dir("shape");
        let path = dir.join("weird.json");
        std::fs::write(&path, "[1, 2, 3]").unwrap();
        match load_snapshot(&path) {
            Err(SnapshotError::Format(msg)) => assert!(msg.contains("weird.json")),
            other => panic!("expected format error, got {other:?}"),
        }
        match load(&path) {
            Err(SnapshotError::Format(msg)) => assert!(msg.contains("weird.json")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Missing files surface as `Io` errors that name the path.
    #[test]
    fn missing_file_io_error_names_path() {
        let err = load_snapshot("/nonexistent/chatiyp/checkpoint.json").unwrap_err();
        match &err {
            SnapshotError::Io(e) => {
                assert!(e.to_string().contains("checkpoint.json"), "{e}");
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let mut g = Graph::new();
        g.add_node(["AS"], props!("asn" => 1i64));
        let dir = std::env::temp_dir().join("iyp_graphdb_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.node_count(), 1);
        std::fs::remove_file(path).ok();
    }
}
