//! Serde round-trip property tests for `DeltaBatch`/`DeltaOp`.
//!
//! The WAL frame format is "JSON of the batch, CRC'd" — so recovery is
//! only as good as the guarantee that an arbitrary batch survives
//! serialize → deserialize *exactly*: same JSON bytes back out, and the
//! same effect when applied to a graph. These tests pin that invariant
//! independently of the WAL itself, over batches that cross-wire
//! `NodeRef::New`/`NodeRef::Existing` targets and use unicode property
//! keys and values.

use iyp_graphdb::{props, DeltaBatch, DeltaOp, Graph, NodeId, NodeRef, Props, RelId, Value};
use proptest::prelude::*;

/// A base graph for apply-equivalence: a handful of nodes and rels so
/// `Existing` refs and `RelId`s sometimes resolve and sometimes dangle.
fn base_graph() -> Graph {
    let mut g = Graph::new();
    g.create_index("AS", "asn");
    let ids: Vec<NodeId> = (0..12)
        .map(|i| g.add_node(["AS"], props!("asn" => i as i64)))
        .collect();
    for w in ids.windows(2) {
        g.add_rel(w[0], "PEERS_WITH", w[1], Props::new())
            .expect("endpoints live");
    }
    g
}

/// Property keys: plain ASCII identifiers mixed with unicode — combining
/// marks, CJK, RTL text, an emoji with a ZWJ sequence, and keys that are
/// JSON-syntax-hostile (quotes, backslashes, control escapes).
fn key_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z_]{1,10}",
        Just("名前".to_string()),
        Just("ασν".to_string()),
        Just("מפתח".to_string()),
        Just("clé_déjà".to_string()),
        Just("👩\u{200d}🚀".to_string()),
        Just("a\u{0301}ccent".to_string()),
        Just("with \"quotes\" \\ and \n newline".to_string()),
        Just("\u{7f}\u{1}control".to_string()),
    ]
}

/// Scalar values: every leaf variant. Floats are drawn from halves
/// (finite, exactly representable) so equality is meaningful.
fn leaf_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1000i64..1000).prop_map(|n| Value::Float(n as f64 / 2.0)),
        key_strategy().prop_map(Value::Str),
    ]
}

/// Values across every JSON-representable variant, one level deep.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        leaf_strategy(),
        proptest::collection::vec(leaf_strategy(), 0..4).prop_map(Value::List),
        proptest::collection::vec((key_strategy(), leaf_strategy()), 0..4)
            .prop_map(|pairs| Value::Map(pairs.into_iter().collect())),
    ]
}

fn props_strategy() -> impl Strategy<Value = Props> {
    proptest::collection::vec((key_strategy(), value_strategy()), 0..4).prop_map(|pairs| {
        let mut p = Props::new();
        for (k, v) in pairs {
            p.set(k, v);
        }
        p
    })
}

/// Node refs cross-wire freely: existing ids (valid and dangling) and
/// `New` indices (in and out of the batch's creation range).
fn node_ref_strategy() -> impl Strategy<Value = NodeRef> {
    prop_oneof![
        (0u64..16).prop_map(|i| NodeRef::Existing(NodeId(i))),
        (0usize..8).prop_map(NodeRef::New),
    ]
}

fn op_strategy() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        (
            proptest::collection::vec(
                prop_oneof!["[A-Z][a-z]{1,6}", Just("试验".to_string())],
                0..3
            ),
            props_strategy()
        )
            .prop_map(|(labels, props)| DeltaOp::AddNode { labels, props }),
        (
            node_ref_strategy(),
            prop_oneof!["[A-Z_]{1,10}", Just("ΣΧΕΣΗ".to_string())],
            node_ref_strategy(),
            props_strategy()
        )
            .prop_map(|(src, ty, dst, props)| DeltaOp::AddRel {
                src,
                ty,
                dst,
                props
            }),
        (node_ref_strategy(), key_strategy(), value_strategy())
            .prop_map(|(node, key, value)| DeltaOp::SetNodeProp { node, key, value }),
        ((0u64..16), key_strategy(), value_strategy()).prop_map(|(rel, key, value)| {
            DeltaOp::SetRelProp {
                rel: RelId(rel),
                key,
                value,
            }
        }),
        (node_ref_strategy(), "[A-Z][a-z]{1,6}")
            .prop_map(|(node, label)| DeltaOp::AddLabel { node, label }),
        node_ref_strategy().prop_map(|node| DeltaOp::RemoveNode { node }),
        (0u64..16).prop_map(|rel| DeltaOp::RemoveRel { rel: RelId(rel) }),
        ("[A-Z][a-z]{1,6}", key_strategy())
            .prop_map(|(label, key)| DeltaOp::CreateIndex { label, key }),
    ]
}

fn batch_strategy() -> impl Strategy<Value = DeltaBatch> {
    proptest::collection::vec(op_strategy(), 0..24).prop_map(|ops| {
        let mut b = DeltaBatch::new();
        b.ops = ops;
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → deserialize → serialize is a fixed point: the decoded
    /// batch re-encodes to byte-identical JSON. This is the exact
    /// property WAL replay depends on (frames store the first
    /// serialization; recovery applies the deserialization).
    #[test]
    fn batch_json_roundtrip_is_a_fixed_point(batch in batch_strategy()) {
        let json = serde_json::to_string(&batch).unwrap();
        let back: DeltaBatch = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(json, json2);
    }

    /// A decoded batch is *behaviorally* identical to the original:
    /// applied to clones of the same base graph, both produce the same
    /// outcome (success with equal graphs, or the same error on the
    /// same op).
    #[test]
    fn decoded_batch_applies_identically(batch in batch_strategy()) {
        let json = serde_json::to_string(&batch).unwrap();
        let decoded: DeltaBatch = serde_json::from_str(&json).unwrap();

        let base = base_graph();
        let mut g1 = base.clone();
        let mut g2 = base.clone();
        let r1 = batch.apply(&mut g1);
        let r2 = decoded.apply(&mut g2);
        prop_assert_eq!(&r1, &r2);

        let j1 = iyp_graphdb::snapshot::to_json(&g1).unwrap();
        let j2 = iyp_graphdb::snapshot::to_json(&g2).unwrap();
        prop_assert_eq!(j1, j2);
    }
}
