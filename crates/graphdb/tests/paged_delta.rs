//! Delta edge cases against the paged copy-on-write storage.
//!
//! These tests pin down batch behaviours that only get interesting once
//! the graph path-copies pages instead of owning its storage outright:
//! ops that touch the same page repeatedly, ops that create and destroy
//! a node inside one batch, and — via proptest — the equivalence of
//! applying a batch to a COW clone versus a fully-owned deep clone.

use iyp_graphdb::{props, DeltaBatch, Graph, NodeId, Props, Value};
use proptest::prelude::*;

/// A small multi-page base graph: 40 AS nodes (PAGE_SIZE is 16, so three
/// node pages) with an index on `asn`, chained by PEERS_WITH rels.
fn base_graph() -> Graph {
    let mut g = Graph::new();
    g.create_index("AS", "asn");
    let ids: Vec<NodeId> = (0..40)
        .map(|i| g.add_node(["AS"], props!("asn" => i as i64)))
        .collect();
    for w in ids.windows(2) {
        g.add_rel(w[0], "PEERS_WITH", w[1], Props::new())
            .expect("endpoints live");
    }
    g
}

/// Creating and deleting the same `NodeRef::New` inside one batch must
/// leave no trace: no node, no label membership, no index entry, and no
/// rels that were wired to it.
#[test]
fn create_then_delete_same_new_ref() {
    let base = base_graph();
    let mut g = base.clone();
    let (nodes_before, rels_before) = (g.node_count(), g.rel_count());

    let mut b = DeltaBatch::new();
    let n = b.add_node(["AS"], props!("asn" => 999i64));
    let anchor = base.index_lookup("AS", "asn", &Value::Int(0)).unwrap()[0];
    b.add_rel(n, "PEERS_WITH", anchor, Props::new());
    b.add_rel(anchor, "PEERS_WITH", n, Props::new());
    b.remove_node(n);
    b.apply(&mut g).expect("batch applies");

    assert_eq!(g.node_count(), nodes_before);
    // Removing the node detach-deletes both rels wired to it in-batch.
    assert_eq!(g.rel_count(), rels_before);
    assert_eq!(g.label_count("AS"), nodes_before);
    assert_eq!(
        g.index_lookup("AS", "asn", &Value::Int(999)).unwrap(),
        Vec::<NodeId>::new()
    );
    // The shared base saw none of it.
    assert_eq!(base.node_count(), nodes_before);
    assert_eq!(base.rel_count(), rels_before);
}

/// Setting a property and then clearing it (Value::Null) in the same
/// batch: the final state has no property and no stale index entry for
/// the intermediate value.
#[test]
fn prop_set_then_clear_same_node() {
    let base = base_graph();
    let mut g = base.clone();
    let target = base.index_lookup("AS", "asn", &Value::Int(7)).unwrap()[0];

    let mut b = DeltaBatch::new();
    b.set_node_prop(target, "asn", 4242i64);
    b.set_node_prop(target, "asn", Value::Null);
    b.apply(&mut g).expect("batch applies");

    assert_eq!(g.node(target).unwrap().props.get("asn"), None);
    assert_eq!(
        g.index_lookup("AS", "asn", &Value::Int(4242)).unwrap(),
        Vec::<NodeId>::new()
    );
    assert_eq!(
        g.index_lookup("AS", "asn", &Value::Int(7)).unwrap(),
        Vec::<NodeId>::new()
    );
    // The COW source still indexes the original value on the same node.
    assert_eq!(
        base.index_lookup("AS", "asn", &Value::Int(7)).unwrap(),
        vec![target]
    );
}

/// Repeated updates through the same indexed key leave exactly one index
/// entry — the last write wins.
#[test]
fn prop_set_twice_last_wins() {
    let base = base_graph();
    let mut g = base.clone();
    let target = base.index_lookup("AS", "asn", &Value::Int(3)).unwrap()[0];

    let mut b = DeltaBatch::new();
    b.set_node_prop(target, "asn", 100i64);
    b.set_node_prop(target, "asn", 200i64);
    b.apply(&mut g).expect("batch applies");

    assert_eq!(
        g.index_lookup("AS", "asn", &Value::Int(100)).unwrap(),
        Vec::<NodeId>::new()
    );
    assert_eq!(
        g.index_lookup("AS", "asn", &Value::Int(200)).unwrap(),
        vec![target]
    );
    assert_eq!(
        g.node(target).unwrap().props.get("asn"),
        Some(&Value::Int(200))
    );
}

/// Many ops aimed at the same existing node — the same page is
/// path-copied once and then mutated in place (make_mut short-circuits
/// on an owned page), and every op lands.
#[test]
fn duplicate_existing_refs_in_one_batch() {
    let base = base_graph();
    let mut g = base.clone();
    let target = base.index_lookup("AS", "asn", &Value::Int(20)).unwrap()[0];
    let rels_before = g.rel_count();

    let mut b = DeltaBatch::new();
    b.set_node_prop(target, "name", "alpha");
    b.add_label(target, "Tagged");
    b.add_rel(target, "PEERS_WITH", target, Props::new());
    b.add_rel(target, "PEERS_WITH", target, Props::new());
    b.set_node_prop(target, "name", "omega");
    b.apply(&mut g).expect("batch applies");

    assert_eq!(
        g.node(target).unwrap().props.get("name"),
        Some(&Value::from("omega"))
    );
    assert!(g.node_has_label(target, "Tagged"));
    assert_eq!(g.rel_count(), rels_before + 2);
    // Base node untouched: no name, no extra label, original degree.
    assert_eq!(base.node(target).unwrap().props.get("name"), None);
    assert!(!base.node_has_label(target, "Tagged"));
    assert_eq!(base.rel_count(), rels_before);
}

// ---------------------------------------------------------------------
// Proptest: applying a batch to a COW clone of a graph is observationally
// identical to applying it to a fully-owned deep clone, and never leaks
// writes into the shared source.
// ---------------------------------------------------------------------

/// One batch op, with targets drawn as indices into a virtual pool of
/// (existing nodes ++ nodes created so far by this batch).
#[derive(Debug, Clone)]
enum BOp {
    AddNode { label: u8, key: i64 },
    AddRel { src: usize, dst: usize },
    SetProp { target: usize, value: i64 },
    ClearProp { target: usize },
    AddLabel { target: usize, label: u8 },
    RemoveNode { target: usize },
}

fn bop_strategy() -> impl Strategy<Value = BOp> {
    prop_oneof![
        (0u8..3, any::<i64>()).prop_map(|(label, key)| BOp::AddNode { label, key }),
        (any::<usize>(), any::<usize>()).prop_map(|(src, dst)| BOp::AddRel { src, dst }),
        (any::<usize>(), any::<i64>()).prop_map(|(target, value)| BOp::SetProp { target, value }),
        any::<usize>().prop_map(|target| BOp::ClearProp { target }),
        (any::<usize>(), 0u8..3).prop_map(|(target, label)| BOp::AddLabel { target, label }),
        any::<usize>().prop_map(|target| BOp::RemoveNode { target }),
    ]
}

const BLABELS: [&str; 3] = ["AS", "Prefix", "Country"];

/// Lower an op spec into the batch. Targets resolve against the base
/// node ids first, then positionally into the batch's own creations —
/// including creations that a later `RemoveNode` destroys, so the batch
/// may legitimately fail to apply (both arms must then fail alike).
fn lower(b: &mut DeltaBatch, base_ids: &[NodeId], created: &mut usize, op: BOp) {
    let pool = base_ids.len() + *created;
    let resolve = |i: usize| -> iyp_graphdb::NodeRef {
        let i = i % pool;
        if i < base_ids.len() {
            base_ids[i].into()
        } else {
            iyp_graphdb::NodeRef::New(i - base_ids.len())
        }
    };
    match op {
        BOp::AddNode { label, key } => {
            b.add_node(
                [BLABELS[label as usize % BLABELS.len()]],
                props!("asn" => key),
            );
            *created += 1;
        }
        BOp::AddRel { src, dst } => {
            b.add_rel(resolve(src), "PEERS_WITH", resolve(dst), Props::new());
        }
        BOp::SetProp { target, value } => {
            b.set_node_prop(resolve(target), "asn", value);
        }
        BOp::ClearProp { target } => {
            b.set_node_prop(resolve(target), "asn", Value::Null);
        }
        BOp::AddLabel { target, label } => {
            b.add_label(resolve(target), BLABELS[label as usize % BLABELS.len()]);
        }
        BOp::RemoveNode { target } => {
            b.remove_node(resolve(target));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// COW apply ≡ owned apply, and the shared source is never written.
    #[test]
    fn paged_apply_matches_owned_apply(ops in proptest::collection::vec(bop_strategy(), 1..40)) {
        let base = base_graph();
        let base_ids: Vec<NodeId> = base.all_nodes().collect();
        let before = iyp_graphdb::snapshot::to_json(&base).unwrap();

        let mut b = DeltaBatch::new();
        let mut created = 0usize;
        for op in ops {
            lower(&mut b, &base_ids, &mut created, op);
        }

        let mut cow = base.clone();       // shares every page with `base`
        let mut owned = base.deep_clone(); // shares nothing
        let r_cow = b.apply(&mut cow);
        let r_owned = b.apply(&mut owned);

        // Same outcome — including the same error on the same op when a
        // ref points at a node the batch itself removed.
        prop_assert_eq!(&r_cow, &r_owned);

        // Same final state, even after a mid-batch failure (the store
        // discards failed copies; the graphs themselves just have to
        // diverge identically).
        let j_cow = iyp_graphdb::snapshot::to_json(&cow).unwrap();
        let j_owned = iyp_graphdb::snapshot::to_json(&owned).unwrap();
        prop_assert_eq!(j_cow, j_owned);

        // And the shared source is byte-identical to before the apply.
        let after = iyp_graphdb::snapshot::to_json(&base).unwrap();
        prop_assert_eq!(before, after);
    }
}
