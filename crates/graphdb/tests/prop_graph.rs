//! Property tests: the graph store's invariants hold under arbitrary
//! mutation sequences.

use iyp_graphdb::{Direction, Graph, NodeId, Props, Value};
use proptest::prelude::*;

/// A random mutation.
#[derive(Debug, Clone)]
enum Op {
    AddNode { label: u8, key: i64 },
    AddRel { src: usize, dst: usize, ty: u8 },
    RemoveNode { idx: usize },
    RemoveRel { idx: usize },
    SetProp { idx: usize, value: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<i64>()).prop_map(|(label, key)| Op::AddNode { label, key }),
        (any::<usize>(), any::<usize>(), 0u8..3).prop_map(|(src, dst, ty)| Op::AddRel {
            src,
            dst,
            ty
        }),
        any::<usize>().prop_map(|idx| Op::RemoveNode { idx }),
        any::<usize>().prop_map(|idx| Op::RemoveRel { idx }),
        (any::<usize>(), any::<i64>()).prop_map(|(idx, value)| Op::SetProp { idx, value }),
    ]
}

const LABELS: [&str; 4] = ["AS", "Prefix", "Country", "IXP"];
const TYPES: [&str; 3] = ["ORIGINATE", "COUNTRY", "PEERS_WITH"];

fn apply(graph: &mut Graph, live_nodes: &mut Vec<NodeId>, live_rels: &mut Vec<u64>, op: Op) {
    match op {
        Op::AddNode { label, key } => {
            let mut p = Props::new();
            p.set("key", key);
            let id = graph.add_node([LABELS[label as usize % LABELS.len()]], p);
            live_nodes.push(id);
        }
        Op::AddRel { src, dst, ty } => {
            if live_nodes.is_empty() {
                return;
            }
            let s = live_nodes[src % live_nodes.len()];
            let d = live_nodes[dst % live_nodes.len()];
            let r = graph
                .add_rel(s, TYPES[ty as usize % TYPES.len()], d, Props::new())
                .expect("both endpoints live");
            live_rels.push(r.0);
        }
        Op::RemoveNode { idx } => {
            if live_nodes.is_empty() {
                return;
            }
            let id = live_nodes.swap_remove(idx % live_nodes.len());
            graph.remove_node(id).expect("was live");
            live_rels.retain(|&r| graph.rel(iyp_graphdb::RelId(r)).is_some());
        }
        Op::RemoveRel { idx } => {
            if live_rels.is_empty() {
                return;
            }
            let r = live_rels.swap_remove(idx % live_rels.len());
            graph.remove_rel(iyp_graphdb::RelId(r)).expect("was live");
        }
        Op::SetProp { idx, value } => {
            if live_nodes.is_empty() {
                return;
            }
            let id = live_nodes[idx % live_nodes.len()];
            graph.set_node_prop(id, "key", value).expect("was live");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counts, adjacency symmetry and label membership all stay
    /// consistent no matter the mutation order.
    #[test]
    fn structural_invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut graph = Graph::new();
        graph.create_index("AS", "key");
        let mut live_nodes = Vec::new();
        let mut live_rels = Vec::new();
        for op in ops {
            apply(&mut graph, &mut live_nodes, &mut live_rels, op);
        }

        // Counts agree with what we tracked.
        prop_assert_eq!(graph.node_count(), live_nodes.len());
        prop_assert_eq!(graph.all_nodes().count(), live_nodes.len());
        prop_assert_eq!(graph.rel_count(), graph.all_rels().count());

        // Adjacency symmetry: every live relationship appears exactly once
        // in its source's out-list and its target's in-list.
        for rid in graph.all_rels() {
            let r = graph.rel(rid).unwrap();
            let out_hits = graph
                .neighbors(r.src, Direction::Outgoing, None)
                .iter()
                .filter(|(id, _)| *id == rid)
                .count();
            let in_hits = graph
                .neighbors(r.dst, Direction::Incoming, None)
                .iter()
                .filter(|(id, _)| *id == rid)
                .count();
            prop_assert_eq!(out_hits, 1);
            prop_assert_eq!(in_hits, 1);
        }

        // Label membership matches per-node labels.
        for label in LABELS {
            for id in graph.nodes_with_label(label) {
                prop_assert!(graph.node_has_label(id, label));
            }
        }
        let by_label: usize = LABELS.iter().map(|l| graph.label_count(l)).sum();
        prop_assert_eq!(by_label, graph.node_count());

        // Degree sums: each edge contributes one out and one in degree.
        let out_sum: usize = graph
            .all_nodes()
            .map(|n| graph.degree(n, Direction::Outgoing))
            .sum();
        let in_sum: usize = graph
            .all_nodes()
            .map(|n| graph.degree(n, Direction::Incoming))
            .sum();
        prop_assert_eq!(out_sum, graph.rel_count());
        prop_assert_eq!(in_sum, graph.rel_count());
    }

    /// The maintained index always answers exactly like a full scan.
    #[test]
    fn index_matches_scan(ops in proptest::collection::vec(op_strategy(), 1..120), probe in any::<i64>()) {
        let mut graph = Graph::new();
        graph.create_index("AS", "key");
        let mut live_nodes = Vec::new();
        let mut live_rels = Vec::new();
        for op in ops {
            apply(&mut graph, &mut live_nodes, &mut live_rels, op);
        }
        // Probe both an arbitrary value and every present value.
        let mut values: Vec<i64> = graph
            .nodes_with_label("AS")
            .filter_map(|id| graph.node(id).unwrap().props.get("key").and_then(Value::as_int))
            .collect();
        values.push(probe);
        for v in values {
            let mut via_index = graph
                .index_lookup("AS", "key", &Value::Int(v))
                .expect("index exists");
            via_index.sort();
            let mut via_scan: Vec<_> = graph
                .nodes_with_label("AS")
                .filter(|&id| {
                    graph.node(id).unwrap().props.get("key") == Some(&Value::Int(v))
                })
                .collect();
            via_scan.sort();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// The write epoch strictly increases on every effective mutation and
    /// never moves on reads — the invariant the query cache relies on to
    /// guarantee stale results are never served.
    #[test]
    fn epoch_tracks_every_mutation(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut graph = Graph::new();
        graph.create_index("AS", "key");
        let mut live_nodes = Vec::new();
        let mut live_rels = Vec::new();
        for op in ops {
            let before = graph.epoch();
            // Ops drawing from empty id pools are skipped by `apply` and
            // must leave the epoch untouched.
            let effective = match &op {
                Op::AddNode { .. } => true,
                Op::AddRel { .. } => !live_nodes.is_empty(),
                Op::RemoveNode { .. } | Op::SetProp { .. } => !live_nodes.is_empty(),
                Op::RemoveRel { .. } => !live_rels.is_empty(),
            };
            apply(&mut graph, &mut live_nodes, &mut live_rels, op);
            if effective {
                prop_assert!(graph.epoch() > before, "mutation did not bump epoch");
            } else {
                prop_assert_eq!(graph.epoch(), before);
            }

            // Reads never move the epoch.
            let at = graph.epoch();
            let _ = graph.node_count();
            let _ = graph.all_nodes().count();
            let _ = graph.index_lookup("AS", "key", &Value::Int(0));
            for id in live_nodes.iter().take(3) {
                let _ = graph.neighbors(*id, Direction::Both, None);
            }
            prop_assert_eq!(graph.epoch(), at);
        }
    }

    /// Serialization round-trips arbitrary graphs exactly.
    #[test]
    fn snapshot_roundtrip(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut graph = Graph::new();
        let mut live_nodes = Vec::new();
        let mut live_rels = Vec::new();
        for op in ops {
            apply(&mut graph, &mut live_nodes, &mut live_rels, op);
        }
        let json = iyp_graphdb::snapshot::to_json(&graph).unwrap();
        let back = iyp_graphdb::snapshot::from_json(&json).unwrap();
        prop_assert_eq!(back.node_count(), graph.node_count());
        prop_assert_eq!(back.rel_count(), graph.rel_count());
        for id in graph.all_nodes() {
            let a = graph.node(id).unwrap();
            let b = back.node(id).expect("node survives");
            prop_assert_eq!(&a.props, &b.props);
            prop_assert_eq!(graph.node_labels(id), back.node_labels(id));
        }
    }
}
