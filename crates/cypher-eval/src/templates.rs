//! Question phrasing banks: each intent kind renders to several English
//! phrasings, mirroring CypherEval's natural-language variety.

use iyp_llm::Intent;

/// Renders all phrasings of an intent. The first phrasing is the
//  canonical one; the rest are paraphrases.
pub fn phrasings(intent: &Intent) -> Vec<String> {
    use Intent::*;
    match intent {
        AsName { asn } => vec![
            format!("What is the name of AS{asn}?"),
            format!("What name is registered for AS{asn}?"),
            format!("Tell me the name of AS{asn}."),
        ],
        AsnOfName { name } => vec![
            format!("What is the ASN of {name}?"),
            format!("Which AS number belongs to {name}?"),
            format!("What is the autonomous system number of {name}?"),
        ],
        AsCountry { asn } => vec![
            format!("In which country is AS{asn} registered?"),
            format!("What country is AS{asn} registered in?"),
            format!("Which country is AS{asn} based in?"),
        ],
        CountAsInCountry { country } => vec![
            format!("How many ASes are registered in {}?", country_name(country)),
            format!(
                "What is the number of autonomous systems in {}?",
                country_name(country)
            ),
            format!(
                "Count the networks registered in {}.",
                country_name(country)
            ),
        ],
        AsRank { asn } => vec![
            format!("What is the CAIDA ASRank of AS{asn}?"),
            format!("What rank does AS{asn} hold in CAIDA's ASRank?"),
            format!("How is AS{asn} ranked by CAIDA?"),
        ],
        CountPrefixes { asn } => vec![
            format!("How many prefixes does AS{asn} originate?"),
            format!("How many prefixes are originated by AS{asn}?"),
            format!("What is the number of prefixes announced by AS{asn}?"),
        ],
        PrefixOrigin { prefix } => vec![
            format!("Which AS originates {prefix}?"),
            format!("Who originates the prefix {prefix}?"),
            format!("What is the origin AS of prefix {prefix}?"),
        ],
        DomainRank { domain } => vec![
            format!("What is the Tranco rank of {domain}?"),
            format!("How is {domain} ranked in the Tranco list?"),
            format!("What rank does {domain} have in Tranco?"),
        ],
        IxpCountry { ixp } => vec![
            format!("In which country is {ixp} located?"),
            format!("Where is the {ixp} exchange point located?"),
            format!("What country is {ixp} in?"),
        ],
        IxpMemberCount { ixp } => vec![
            format!("How many members does {ixp} have?"),
            format!("How many networks are members of {ixp}?"),
            format!("What is the member count of {ixp}?"),
        ],
        PopulationShare { asn, country } => vec![
            format!(
                "What is the percentage of {}'s population in AS{asn}?",
                country_name(country)
            ),
            format!(
                "What share of {}'s population does AS{asn} serve?",
                country_name(country)
            ),
            format!(
                "How much of the population of {} is served by AS{asn}?",
                country_name(country)
            ),
        ],
        OrgOfAs { asn } => vec![
            format!("Which organization manages AS{asn}?"),
            format!("Who runs AS{asn}?"),
            format!("What is the operator organization of AS{asn}?"),
        ],
        TopAsInCountryByPrefixes { country, n } => vec![
            format!(
                "Which are the top {n} ASes in {} by number of originated prefixes?",
                country_name(country)
            ),
            format!(
                "List the top {n} networks of {} by prefix count.",
                country_name(country)
            ),
            format!(
                "What are the top {n} prefix originators in {}?",
                country_name(country)
            ),
        ],
        TopPopulationAs { country } => vec![
            format!(
                "Which AS serves the largest share of the population of {}?",
                country_name(country)
            ),
            format!(
                "Which network serves most of {}'s population?",
                country_name(country)
            ),
            format!(
                "What is the biggest eyeball network by population share in {}?",
                country_name(country)
            ),
        ],
        PrefixesAfCount { asn, af } => vec![
            format!("How many IPv{af} prefixes does AS{asn} originate?"),
            format!("How many IPv{af} prefixes are announced by AS{asn}?"),
            format!("What is the count of IPv{af} prefixes originated by AS{asn}?"),
        ],
        IxpMembersFromCountry { ixp, country } => vec![
            format!(
                "How many members of {ixp} are registered in {}?",
                country_name(country)
            ),
            format!(
                "How many {}-registered members does {ixp} have?",
                country_name(country)
            ),
            format!("Count the members of {ixp} from {}.", country_name(country)),
        ],
        SharedIxps { a, b } => vec![
            format!("Which IXPs are AS{a} and AS{b} both members of?"),
            format!("At which IXPs do AS{a} and AS{b} both peer?"),
            format!("Which exchange points do AS{a} and AS{b} share?"),
        ],
        TopRankedInCountry { country } => vec![
            format!(
                "Which AS in {} has the best CAIDA rank?",
                country_name(country)
            ),
            format!("What is the top-ranked AS of {}?", country_name(country)),
            format!(
                "Which network holds the highest CAIDA rank in {}?",
                country_name(country)
            ),
        ],
        AvgPrefixesInCountry { country } => vec![
            format!(
                "What is the average number of prefixes per AS in {}?",
                country_name(country)
            ),
            format!(
                "How many prefixes does an average AS in {} originate?",
                country_name(country)
            ),
            format!(
                "What is the mean prefix count of {}'s networks?",
                country_name(country)
            ),
        ],
        TaggedAsInCountry { tag, country } => vec![
            format!(
                "How many {tag} networks are registered in {}?",
                country_name(country)
            ),
            format!(
                "How many ASes in {} are categorized as {tag}?",
                country_name(country)
            ),
            format!(
                "Count the {tag} ASes registered in {}.",
                country_name(country)
            ),
        ],
        TransitiveUpstreams { asn } => vec![
            format!("Which ASes does AS{asn} depend on directly or indirectly?"),
            format!("What are the transitive upstream providers of AS{asn}?"),
            format!("Which upstream networks can AS{asn} reach within three hops?"),
        ],
        CommonUpstreams { a, b } => vec![
            format!("Which upstream providers do AS{a} and AS{b} have in common?"),
            format!("Which transit providers are shared by AS{a} and AS{b}?"),
            format!("What common upstreams do AS{a} and AS{b} use?"),
        ],
        UpstreamCountries { asn } => vec![
            format!("In which countries are the upstream providers of AS{asn} registered?"),
            format!("Which countries host the upstreams of AS{asn}?"),
            format!("Where are AS{asn}'s transit providers registered? List the countries."),
        ],
        TopDomainOnAs { asn } => vec![
            format!("What is the best-ranked domain hosted on AS{asn}?"),
            format!("Which domain with the top Tranco rank resolves to AS{asn}?"),
            format!("What is the highest-ranked domain served from AS{asn}?"),
        ],
        UpstreamPrefixCount { asn } => vec![
            format!("How many prefixes in total do the upstream providers of AS{asn} originate?"),
            format!("How many prefixes do AS{asn}'s upstreams announce in total?"),
            format!(
                "What is the total prefix count originated by the upstream providers of AS{asn}?"
            ),
        ],
        PopulationOfTopRanked { country } => vec![
            format!(
                "What share of the population of {} is served by its top-ranked AS?",
                country_name(country)
            ),
            format!(
                "How much of {}'s population does its best-ranked AS serve?",
                country_name(country)
            ),
            format!(
                "What population share belongs to the top-ranked network of {}?",
                country_name(country)
            ),
        ],
        DomainsOnAs { asn } => vec![
            format!("Which domains resolve to prefixes originated by AS{asn}?"),
            format!("Which domain names are hosted on AS{asn}?"),
            format!("List the domains that resolve into AS{asn}'s address space."),
        ],
        ShortestDependencyPath { a, b } => vec![
            format!("What is the length of the shortest dependency path from AS{a} to AS{b}?"),
            format!("How many hops separate AS{a} from AS{b} in the transit graph?"),
            format!("What is the shortest transit path length between AS{a} and AS{b}?"),
        ],
        TransitFreeInCountry { country } => vec![
            format!(
                "Which ASes in {} have no upstream providers?",
                country_name(country)
            ),
            format!(
                "Which networks registered in {} are transit-free?",
                country_name(country)
            ),
            format!(
                "List the ASes in {} without any upstream provider.",
                country_name(country)
            ),
        ],
        HegemonyOfAs { asn } => vec![
            format!("What is the hegemony score of AS{asn}?"),
            format!("How high is AS{asn}'s hegemony in the transit graph?"),
            format!("What transit centrality (hegemony) does AS{asn} have?"),
        ],
    }
}

/// Renders a country code as its English name (falling back to the code).
fn country_name(code: &str) -> String {
    iyp_data::countries::by_code(code)
        .map(|c| c.name.to_string())
        .unwrap_or_else(|| code.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::intent::{parse_question, EntityCatalog};

    /// Every phrasing of every intent kind must parse back to its intent:
    /// the error model, not parser brittleness, must own the failure
    /// distribution.
    #[test]
    fn all_phrasings_roundtrip_through_the_parser() {
        let d = generate(&IypConfig::tiny());
        let cat = EntityCatalog::from_dataset(&d);
        let domain = d
            .graph
            .nodes_with_label("DomainName")
            .next()
            .and_then(|id| d.graph.node(id).unwrap().props.get("name").cloned())
            .unwrap()
            .to_string();
        let ixp = d.ixp_by_name.keys().next().unwrap().clone();
        let intents = vec![
            Intent::AsName { asn: 2497 },
            Intent::AsnOfName { name: "IIJ".into() },
            Intent::AsCountry { asn: 2497 },
            Intent::CountAsInCountry {
                country: "DE".into(),
            },
            Intent::AsRank { asn: 2497 },
            Intent::CountPrefixes { asn: 2497 },
            Intent::PrefixOrigin {
                prefix: "203.0.113.0/24".into(),
            },
            Intent::DomainRank {
                domain: domain.clone(),
            },
            Intent::IxpCountry { ixp: ixp.clone() },
            Intent::IxpMemberCount { ixp: ixp.clone() },
            Intent::PopulationShare {
                asn: 2497,
                country: "JP".into(),
            },
            Intent::OrgOfAs { asn: 2497 },
            Intent::TopAsInCountryByPrefixes {
                country: "US".into(),
                n: 5,
            },
            Intent::TopPopulationAs {
                country: "JP".into(),
            },
            Intent::PrefixesAfCount { asn: 2497, af: 4 },
            Intent::IxpMembersFromCountry {
                ixp: ixp.clone(),
                country: "JP".into(),
            },
            Intent::SharedIxps { a: 2497, b: 2914 },
            Intent::TopRankedInCountry {
                country: "US".into(),
            },
            Intent::AvgPrefixesInCountry {
                country: "JP".into(),
            },
            Intent::TaggedAsInCountry {
                tag: "Eyeball".into(),
                country: "JP".into(),
            },
            Intent::TransitiveUpstreams { asn: 2497 },
            Intent::CommonUpstreams { a: 2497, b: 15169 },
            Intent::UpstreamCountries { asn: 2497 },
            Intent::TopDomainOnAs { asn: 15169 },
            Intent::UpstreamPrefixCount { asn: 2497 },
            Intent::PopulationOfTopRanked {
                country: "JP".into(),
            },
            Intent::DomainsOnAs { asn: 15169 },
            Intent::ShortestDependencyPath { a: 2497, b: 1299 },
            Intent::TransitFreeInCountry {
                country: "US".into(),
            },
            Intent::HegemonyOfAs { asn: 2497 },
        ];
        for intent in intents {
            for (i, phrasing) in phrasings(&intent).iter().enumerate() {
                let parsed = parse_question(phrasing, &cat);
                assert_eq!(
                    parsed.as_ref(),
                    Some(&intent),
                    "phrasing {i} of {} failed to round-trip: {phrasing:?} -> {parsed:?}",
                    intent.kind()
                );
            }
        }
    }

    #[test]
    fn every_intent_has_at_least_three_phrasings() {
        let p = phrasings(&Intent::AsName { asn: 1 });
        assert!(p.len() >= 3);
        let p = phrasings(&Intent::PopulationOfTopRanked {
            country: "JP".into(),
        });
        assert!(p.len() >= 3);
    }
}
