//! # cypher-eval
//!
//! A CypherEval-style benchmark (Giakatos, Tashiro & Fontugne, LCN 2025):
//! 300+ natural-language questions over the IYP graph, each annotated with
//! a gold Cypher query and labeled by difficulty (Easy/Medium/Hard) and
//! domain (general/technical).
//!
//! The real dataset lives on Codeberg and targets the public IYP dump;
//! this crate regenerates an equivalent benchmark against our synthetic
//! graph: [`templates`] holds per-intent phrasing banks, [`dataset`]
//! instantiates questions with entities sampled from the graph, and
//! [`validate`] implements the paper's validation model (gold-query
//! execution → reference answer) plus ground-truth correctness scoring.
//!
//! ```
//! use iyp_data::{generate, IypConfig};
//! use cypher_eval::{build_dataset, EvalConfig, Validator};
//!
//! let data = generate(&IypConfig::tiny());
//! let bench = build_dataset(&data, &EvalConfig { seed: 42, target_size: 30 });
//! let validator = Validator::new(42);
//! let v = validator.validate(&data.graph, &bench.items[0]).unwrap();
//! assert!(!v.reference_answer.is_empty());
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod templates;
pub mod validate;

pub use dataset::{build_dataset, CypherEvalDataset, EvalConfig, EvalItem};
pub use validate::{results_match, Validation, Validator};
