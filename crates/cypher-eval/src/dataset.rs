//! Benchmark dataset construction: instantiating 300+ labeled questions
//! with gold Cypher against a generated IYP graph.

use crate::templates::phrasings;
use iyp_data::IypDataset;
use iyp_llm::{canonical_cypher, Difficulty, Domain, Intent};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One benchmark question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalItem {
    /// Stable id within the dataset.
    pub id: usize,
    /// The natural-language question.
    pub question: String,
    /// The annotated gold Cypher query.
    pub gold_cypher: String,
    /// The underlying intent (kept for analysis; the system under test
    /// never sees it).
    pub intent: Intent,
    /// Difficulty label.
    pub difficulty: Difficulty,
    /// Domain label.
    pub domain: Domain,
}

/// Dataset construction parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Seed for entity sampling and phrasing choice.
    pub seed: u64,
    /// Approximate number of questions (the paper's CypherEval has 300+).
    pub target_size: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            seed: 42,
            target_size: 312,
        }
    }
}

/// The benchmark dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CypherEvalDataset {
    /// All questions.
    pub items: Vec<EvalItem>,
}

impl CypherEvalDataset {
    /// Items of one difficulty.
    pub fn by_difficulty(&self, d: Difficulty) -> Vec<&EvalItem> {
        self.items.iter().filter(|i| i.difficulty == d).collect()
    }

    /// Items of one domain.
    pub fn by_domain(&self, d: Domain) -> Vec<&EvalItem> {
        self.items.iter().filter(|i| i.domain == d).collect()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Entity pools sampled from the dataset.
struct Pools {
    asns: Vec<u32>,
    eyeball_pairs: Vec<(u32, String)>,
    countries: Vec<String>,
    ixps: Vec<String>,
    ixp_countries: Vec<(String, String)>,
    domains: Vec<String>,
    prefixes: Vec<(String, u32)>,
    tags: Vec<String>,
    names: Vec<(String, u32)>,
    /// AS pairs with a common DEPENDS_ON provider.
    co_customers: Vec<(u32, u32)>,
    /// AS pairs with a common IXP.
    co_members: Vec<(u32, u32)>,
    /// ASes that host at least one domain.
    hosting_asns: Vec<u32>,
    /// (customer, reachable-upstream) pairs over DEPENDS_ON.
    dep_pairs: Vec<(u32, u32)>,
}

fn build_pools(d: &IypDataset) -> Pools {
    use iyp_graphdb::Direction;
    let mut asns: Vec<u32> = d.ases.iter().map(|a| a.asn).collect();
    asns.sort_unstable();
    let mut countries: Vec<String> = d
        .ases
        .iter()
        .map(|a| a.country.to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    countries.sort();
    let mut eyeball_pairs = Vec::new();
    for spec in &d.ases {
        let id = d.as_by_asn[&spec.asn];
        for (_, nbr) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["POPULATION"]))
        {
            if let Some(cc) = d
                .graph
                .node(nbr)
                .and_then(|n| n.props.get("country_code"))
                .and_then(|v| v.as_str().map(String::from))
            {
                eyeball_pairs.push((spec.asn, cc));
            }
        }
    }
    let mut ixps: Vec<String> = d.ixp_by_name.keys().cloned().collect();
    ixps.sort();
    let mut ixp_countries = Vec::new();
    for (name, &id) in &d.ixp_by_name {
        for (_, nbr) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["COUNTRY"]))
        {
            if let Some(cc) = d
                .graph
                .node(nbr)
                .and_then(|n| n.props.get("country_code"))
                .and_then(|v| v.as_str().map(String::from))
            {
                ixp_countries.push((name.clone(), cc));
            }
        }
    }
    ixp_countries.sort();
    let mut domains = Vec::new();
    for id in d.graph.nodes_with_label("DomainName") {
        if let Some(name) = d
            .graph
            .node(id)
            .and_then(|n| n.props.get("name"))
            .and_then(|v| v.as_str().map(String::from))
        {
            domains.push(name);
        }
    }
    domains.sort();
    let mut prefixes = Vec::new();
    for spec in &d.ases {
        let id = d.as_by_asn[&spec.asn];
        for (_, nbr) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["ORIGINATE"]))
        {
            if let Some(p) = d
                .graph
                .node(nbr)
                .and_then(|n| n.props.get("prefix"))
                .and_then(|v| v.as_str().map(String::from))
            {
                prefixes.push((p, spec.asn));
            }
        }
    }
    prefixes.sort();
    let names: Vec<(String, u32)> = d.ases.iter().map(|a| (a.name.clone(), a.asn)).collect();

    // Pairs of ASes sharing an upstream / an IXP, so hard join questions
    // usually have non-empty answers (random pairs almost never overlap,
    // which would let empty-vs-empty agreement inflate hard scores).
    let mut upstream_customers: std::collections::HashMap<iyp_graphdb::NodeId, Vec<u32>> =
        std::collections::HashMap::new();
    let mut ixp_members: std::collections::HashMap<iyp_graphdb::NodeId, Vec<u32>> =
        std::collections::HashMap::new();
    for spec in &d.ases {
        let id = d.as_by_asn[&spec.asn];
        for (_, up) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["DEPENDS_ON"]))
        {
            upstream_customers.entry(up).or_default().push(spec.asn);
        }
        for (_, ixp) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["MEMBER_OF"]))
        {
            ixp_members.entry(ixp).or_default().push(spec.asn);
        }
    }
    let sibling_pairs = |m: &std::collections::HashMap<iyp_graphdb::NodeId, Vec<u32>>| {
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut keys: Vec<_> = m.keys().copied().collect();
        keys.sort();
        for k in keys {
            let members = &m[&k];
            for w in members.windows(2) {
                if w[0] != w[1] {
                    out.push((w[0], w[1]));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    };
    let co_customers = sibling_pairs(&upstream_customers);
    let co_members = sibling_pairs(&ixp_members);

    // (customer, provider) and (customer, provider-of-provider) pairs, so
    // shortest-path questions usually have a route to find.
    let mut dep_pairs: Vec<(u32, u32)> = Vec::new();
    for spec in &d.ases {
        let id = d.as_by_asn[&spec.asn];
        for (_, up) in d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["DEPENDS_ON"]))
        {
            let up_asn = d
                .graph
                .node(up)
                .and_then(|n| n.props.get("asn"))
                .and_then(|v| v.as_int())
                .map(|v| v as u32);
            if let Some(up_asn) = up_asn {
                dep_pairs.push((spec.asn, up_asn));
            }
            for (_, up2) in d
                .graph
                .neighbors(up, Direction::Outgoing, Some(&["DEPENDS_ON"]))
            {
                let up2_asn = d
                    .graph
                    .node(up2)
                    .and_then(|n| n.props.get("asn"))
                    .and_then(|v| v.as_int())
                    .map(|v| v as u32);
                if let Some(up2_asn) = up2_asn {
                    if up2_asn != spec.asn {
                        dep_pairs.push((spec.asn, up2_asn));
                    }
                }
            }
        }
    }
    dep_pairs.sort_unstable();
    dep_pairs.dedup();

    // ASes with at least one domain resolving into their prefixes, so
    // domain-hosting questions usually have answers.
    let mut hosting_asns: Vec<u32> = Vec::new();
    for spec in &d.ases {
        let id = d.as_by_asn[&spec.asn];
        let hosts = d
            .graph
            .neighbors(id, Direction::Outgoing, Some(&["ORIGINATE"]))
            .into_iter()
            .any(|(_, p)| {
                !d.graph
                    .neighbors(p, Direction::Incoming, Some(&["RESOLVES_TO"]))
                    .is_empty()
            });
        if hosts {
            hosting_asns.push(spec.asn);
        }
    }
    hosting_asns.sort_unstable();

    Pools {
        asns,
        eyeball_pairs,
        countries,
        ixps,
        ixp_countries,
        domains,
        prefixes,
        tags: iyp_data::schema::TAGS
            .iter()
            .map(|t| t.to_string())
            .collect(),
        names,
        co_customers,
        co_members,
        hosting_asns,
        dep_pairs,
    }
}

fn pick<'a, T>(rng: &mut StdRng, v: &'a [T]) -> &'a T {
    &v[rng.random_range(0..v.len())]
}

/// Builds the benchmark dataset for a generated IYP graph.
pub fn build_dataset(d: &IypDataset, config: &EvalConfig) -> CypherEvalDataset {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x43594550); // "CYEP"
    let pools = build_pools(d);
    let kinds: usize = 30;
    let per_kind = config.target_size.div_ceil(kinds).max(1);

    let mut items = Vec::new();
    for round in 0..per_kind {
        for kind in 0..kinds {
            if items.len() >= config.target_size {
                break;
            }
            let intent = sample_intent(kind, &mut rng, &pools);
            let bank = phrasings(&intent);
            let phrasing = bank[(round + items.len()) % bank.len()].clone();
            let gold_cypher = canonical_cypher(&intent);
            items.push(EvalItem {
                id: items.len(),
                question: phrasing,
                gold_cypher,
                difficulty: intent.difficulty(),
                domain: intent.domain(),
                intent,
            });
        }
    }
    CypherEvalDataset { items }
}

fn sample_intent(kind: usize, rng: &mut StdRng, p: &Pools) -> Intent {
    let asn = |rng: &mut StdRng| *pick(rng, &p.asns);
    let country = |rng: &mut StdRng| pick(rng, &p.countries).clone();
    match kind {
        0 => Intent::AsName { asn: asn(rng) },
        1 => {
            let (name, _) = pick(rng, &p.names).clone();
            Intent::AsnOfName { name }
        }
        2 => Intent::AsCountry { asn: asn(rng) },
        3 => Intent::CountAsInCountry {
            country: country(rng),
        },
        4 => Intent::AsRank { asn: asn(rng) },
        5 => Intent::CountPrefixes { asn: asn(rng) },
        6 => {
            let (prefix, _) = pick(rng, &p.prefixes).clone();
            Intent::PrefixOrigin { prefix }
        }
        7 => Intent::DomainRank {
            domain: pick(rng, &p.domains).clone(),
        },
        8 => Intent::IxpCountry {
            ixp: pick(rng, &p.ixps).clone(),
        },
        9 => Intent::IxpMemberCount {
            ixp: pick(rng, &p.ixps).clone(),
        },
        10 => {
            // Mostly real (AS, country) population pairs; some misses so
            // empty-result handling is exercised too.
            if !p.eyeball_pairs.is_empty() && rng.random::<f64>() < 0.8 {
                let (asn, country) = pick(rng, &p.eyeball_pairs).clone();
                Intent::PopulationShare { asn, country }
            } else {
                Intent::PopulationShare {
                    asn: asn(rng),
                    country: country(rng),
                }
            }
        }
        11 => Intent::OrgOfAs { asn: asn(rng) },
        12 => Intent::TopAsInCountryByPrefixes {
            country: country(rng),
            n: rng.random_range(3..=10),
        },
        13 => Intent::TopPopulationAs {
            country: country(rng),
        },
        14 => Intent::PrefixesAfCount {
            asn: asn(rng),
            af: if rng.random::<bool>() { 4 } else { 6 },
        },
        15 => {
            let (ixp, cc) = pick(rng, &p.ixp_countries).clone();
            // Usually the IXP's own country (non-empty answers).
            let country = if rng.random::<f64>() < 0.85 {
                cc
            } else {
                country(rng)
            };
            Intent::IxpMembersFromCountry { ixp, country }
        }
        16 => {
            if !p.co_members.is_empty() && rng.random::<f64>() < 0.85 {
                let (a, b) = *pick(rng, &p.co_members);
                Intent::SharedIxps { a, b }
            } else {
                let a = asn(rng);
                let mut b = asn(rng);
                while b == a {
                    b = asn(rng);
                }
                Intent::SharedIxps { a, b }
            }
        }
        17 => Intent::TopRankedInCountry {
            country: country(rng),
        },
        18 => Intent::AvgPrefixesInCountry {
            country: country(rng),
        },
        19 => Intent::TaggedAsInCountry {
            tag: pick(rng, &p.tags).clone(),
            country: country(rng),
        },
        20 => Intent::TransitiveUpstreams { asn: asn(rng) },
        21 => {
            if !p.co_customers.is_empty() && rng.random::<f64>() < 0.85 {
                let (a, b) = *pick(rng, &p.co_customers);
                Intent::CommonUpstreams { a, b }
            } else {
                let a = asn(rng);
                let mut b = asn(rng);
                while b == a {
                    b = asn(rng);
                }
                Intent::CommonUpstreams { a, b }
            }
        }
        22 => Intent::UpstreamCountries { asn: asn(rng) },
        23 => Intent::TopDomainOnAs {
            asn: if !p.hosting_asns.is_empty() && rng.random::<f64>() < 0.85 {
                *pick(rng, &p.hosting_asns)
            } else {
                asn(rng)
            },
        },
        24 => Intent::UpstreamPrefixCount { asn: asn(rng) },
        25 => Intent::PopulationOfTopRanked {
            country: country(rng),
        },
        26 => Intent::DomainsOnAs {
            asn: if !p.hosting_asns.is_empty() && rng.random::<f64>() < 0.85 {
                *pick(rng, &p.hosting_asns)
            } else {
                asn(rng)
            },
        },
        27 => {
            if !p.dep_pairs.is_empty() && rng.random::<f64>() < 0.85 {
                let (a, b) = *pick(rng, &p.dep_pairs);
                Intent::ShortestDependencyPath { a, b }
            } else {
                let a = asn(rng);
                let mut b = asn(rng);
                while b == a {
                    b = asn(rng);
                }
                Intent::ShortestDependencyPath { a, b }
            }
        }
        28 => {
            // Bias toward countries that actually host transit-free
            // (tier-1) networks, so the answer set is non-empty half the
            // time; the rest exercise the empty-result path.
            let tier1_homes = ["US", "SE", "JP", "DE", "IN"];
            let country = if rng.random::<f64>() < 0.5 {
                tier1_homes[rng.random_range(0..tier1_homes.len())].to_string()
            } else {
                country(rng)
            };
            Intent::TransitFreeInCountry { country }
        }
        _ => Intent::HegemonyOfAs { asn: asn(rng) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};

    fn dataset() -> CypherEvalDataset {
        let d = generate(&IypConfig::tiny());
        build_dataset(&d, &EvalConfig::default())
    }

    #[test]
    fn reaches_target_size() {
        let ds = dataset();
        assert!(ds.items.len() >= 300, "only {} items", ds.items.len());
    }

    #[test]
    fn covers_all_difficulties_and_domains() {
        let ds = dataset();
        for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
            assert!(
                ds.by_difficulty(d).len() >= 30,
                "{d}: {}",
                ds.by_difficulty(d).len()
            );
        }
        for dom in [Domain::General, Domain::Technical] {
            assert!(ds.by_domain(dom).len() >= 80, "{dom}");
        }
        // Both domains present within each difficulty.
        for d in [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard] {
            let items = ds.by_difficulty(d);
            assert!(items.iter().any(|i| i.domain == Domain::General));
            assert!(items.iter().any(|i| i.domain == Domain::Technical));
        }
    }

    #[test]
    fn gold_queries_all_execute() {
        let d = generate(&IypConfig::tiny());
        let ds = build_dataset(
            &d,
            &EvalConfig {
                seed: 42,
                target_size: 60,
            },
        );
        for item in &ds.items {
            let r = iyp_cypher::query(&d.graph, &item.gold_cypher);
            assert!(
                r.is_ok(),
                "gold query of item {} failed: {}\n{:?}",
                item.id,
                item.gold_cypher,
                r.err()
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let d = generate(&IypConfig::tiny());
        let a = build_dataset(&d, &EvalConfig::default());
        let b = build_dataset(&d, &EvalConfig::default());
        assert_eq!(a.items.len(), b.items.len());
        assert!(a
            .items
            .iter()
            .zip(&b.items)
            .all(|(x, y)| x.question == y.question && x.gold_cypher == y.gold_cypher));
    }

    #[test]
    fn json_roundtrip() {
        let ds = dataset();
        let json = ds.to_json();
        let back = CypherEvalDataset::from_json(&json).unwrap();
        assert_eq!(back.items.len(), ds.items.len());
        assert_eq!(back.items[0].question, ds.items[0].question);
    }

    #[test]
    fn labels_match_intent_metadata() {
        let ds = dataset();
        for item in &ds.items {
            assert_eq!(item.difficulty, item.intent.difficulty());
            assert_eq!(item.domain, item.intent.domain());
        }
    }
}
