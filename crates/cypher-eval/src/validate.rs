//! The validation model: executes gold Cypher on the graph and produces a
//! reference answer (the paper's "validation model ... prompts GPT-3.5 to
//! produce a reference answer"), plus ground-truth correctness scoring by
//! result comparison.

use crate::dataset::EvalItem;
use iyp_cypher::QueryResult;
use iyp_graphdb::Graph;
use iyp_llm::{generate_reference, LmConfig, SimLm};
use serde::Serialize;

/// The validation output for one item.
#[derive(Debug, Clone, Serialize)]
pub struct Validation {
    /// The reference (gold) answer text.
    pub reference_answer: String,
    /// The gold query's result.
    pub gold_result: QueryResult,
}

/// A validator: executes gold queries and phrases reference answers with
/// its own generation model (seeded independently of the system under
/// test, like the paper's separate validation LLM).
pub struct Validator {
    lm: SimLm,
}

impl Validator {
    /// Creates a validator with the given seed.
    pub fn new(seed: u64) -> Self {
        Validator {
            // The validation model phrases references with its own
            // (lower) paraphrase variety.
            lm: SimLm::new(LmConfig {
                seed: seed ^ 0x56414c, // "VAL"
                skill: 1.0,
                variety: 0.35,
            }),
        }
    }

    /// Runs the gold query and produces the reference answer.
    ///
    /// # Errors
    /// Returns the underlying Cypher error when the gold query fails —
    /// that is a benchmark bug, not a model failure.
    pub fn validate(
        &self,
        graph: &Graph,
        item: &EvalItem,
    ) -> Result<Validation, iyp_cypher::CypherError> {
        let gold_result = iyp_cypher::query(graph, &item.gold_cypher)?;
        let reference_answer =
            generate_reference(&self.lm, &item.question, Some(&item.intent), &gold_result);
        Ok(Validation {
            reference_answer,
            gold_result,
        })
    }
}

/// Ground-truth correctness: do two results hold the same facts?
/// Compared order-insensitively via canonical fingerprints (column names
/// and float noise are ignored).
pub fn results_match(gold: &QueryResult, candidate: &QueryResult) -> bool {
    gold.fingerprint(false) == candidate.fingerprint(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, EvalConfig};
    use iyp_data::{generate, IypConfig};

    #[test]
    fn validation_produces_reference_answers() {
        let d = generate(&IypConfig::tiny());
        let ds = build_dataset(
            &d,
            &EvalConfig {
                seed: 42,
                target_size: 54,
            },
        );
        let v = Validator::new(42);
        let mut nonempty = 0;
        for item in &ds.items {
            let val = v.validate(&d.graph, item).expect("gold query runs");
            assert!(!val.reference_answer.is_empty());
            if !val.gold_result.is_empty() {
                nonempty += 1;
            }
        }
        // Most questions should have data behind them.
        assert!(
            nonempty * 10 >= ds.items.len() * 6,
            "only {nonempty}/{} items have data",
            ds.items.len()
        );
    }

    #[test]
    fn results_match_ignores_order_and_aliases() {
        use iyp_graphdb::Value;
        let a = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = QueryResult {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert!(results_match(&a, &b));
        let c = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(3)]],
        };
        assert!(!results_match(&a, &c));
    }

    #[test]
    fn validator_is_deterministic() {
        let d = generate(&IypConfig::tiny());
        let ds = build_dataset(
            &d,
            &EvalConfig {
                seed: 42,
                target_size: 10,
            },
        );
        let v1 = Validator::new(7);
        let v2 = Validator::new(7);
        for item in &ds.items {
            assert_eq!(
                v1.validate(&d.graph, item).unwrap().reference_answer,
                v2.validate(&d.graph, item).unwrap().reference_answer
            );
        }
    }
}
