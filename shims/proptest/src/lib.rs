#![allow(clippy::all)]
//! Offline proptest shim.
//!
//! A deterministic property-testing harness exposing the proptest API
//! subset used by this workspace: `proptest!` with `#![proptest_config]`,
//! strategies over ranges / tuples / regex-like string patterns,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `collection::vec`,
//! `any::<T>()`, `Just`, `prop_assert*!`, and `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case number, and cases are generated deterministically from the
//! test name, so failures reproduce exactly.

use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// Config, RNG, errors
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn from_name_and_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    pub fn unit_f64(&mut self) -> f64 {
        self.rng.random()
    }
}

/// A failed or discarded test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursion-bounded strategy: each of `depth` levels picks
    /// either the base (leaf) strategy or one application of `f` to the
    /// previous level. (No shrinking, so `_size`/`_branch` are unused.)
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            current = Union::new(vec![base.clone(), f(current).boxed()]).boxed();
        }
        current
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any::<T>()
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().random_range(self.clone())
            }
        }
    )*};
}

impl TestRng {
    fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broad-range floats; full bit-pattern floats (NaN, inf)
        // trip ordinary numeric code rather than testing it.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index(rng.next_u64() as usize)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    /// An index into a runtime-sized collection, resolved via `index(len)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-like patterns
// ---------------------------------------------------------------------------

enum PatternAtom {
    Class(Vec<char>),
    Literal(char),
}

struct PatternPart {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut choices = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            choices.push(c);
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                PatternAtom::Class(choices)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                PatternAtom::Literal(c)
            }
            c => {
                i += 1;
                PatternAtom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

/// String literals act as regex-subset strategies, like in real proptest:
/// `"[a-z][a-z0-9]{0,6}"` generates matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let count = part.min + rng.below(part.max - part.min + 1);
            for _ in 0..count {
                match &part.atom {
                    PatternAtom::Class(choices) => {
                        out.push(choices[rng.below(choices.len())]);
                    }
                    PatternAtom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuple and collection strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($t:ident, $idx:tt)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `collection::vec(element, len_range)`: vectors with length drawn
    /// from `len_range` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let len = self.len.start + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case (counts as passed) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::from_name_and_case(stringify!($name), __case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!("proptest case {} of {} failed: {}", __case, stringify!($name), __e);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::TestRng::from_name_and_case("pattern", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn harness_runs_and_asserts(x in 0i64..100, v in crate::collection::vec(0u8..3, 0..10)) {
            prop_assume!(x != 999);
            prop_assert!((0..100).contains(&x));
            prop_assert!(v.len() < 10);
            if x < 0 {
                return Ok(());
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn oneof_and_map_compose(e in prop_oneof![
            Just(1i64),
            (0i64..5).prop_map(|v| v * 10),
            any::<i64>().prop_map(|v| v % 7),
        ]) {
            prop_assert!(e == 1 || e % 10 == 0 || e.abs() < 7);
        }
    }
}
