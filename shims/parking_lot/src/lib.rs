#![allow(clippy::all)]
//! Offline parking_lot shim: thin wrappers over `std::sync` locks exposing
//! parking_lot's poison-free API (lock methods return guards directly).
//! A poisoned std lock means a writer panicked; propagating the panic by
//! unwrapping matches parking_lot closely enough for this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_many_readers() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn mutex_mutates() {
        let m = Mutex::new(0);
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }
}
