#![allow(clippy::all)]
//! Offline bytes shim: `BytesMut` as a newtype over `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer. The HTTP layer only appends and reads, so a Vec
/// covers the needed surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.0.extend_from_slice(slice);
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_split() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hello ");
        b.extend_from_slice(b"world");
        assert_eq!(&b[..], b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
    }
}
