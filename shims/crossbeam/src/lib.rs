#![allow(clippy::all)]
//! Offline crossbeam shim.
//!
//! `channel` is a multi-producer multi-consumer bounded/unbounded channel
//! built on `Mutex<VecDeque>` + condvars — the same semantics the server's
//! worker pool relies on (any worker can `recv`, senders block when full,
//! receivers fail once all senders are gone). `thread` re-exports std's
//! scoped threads, which cover crossbeam's scope API for our callers.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half. Cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by `send` when all receivers are gone; carries the
    /// unsent value like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and all senders
    /// are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by `try_send` on a full or disconnected channel.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors when all receivers are
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.inner.cap.is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.inner.cap.is_some_and(|cap| state.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when the channel is empty
        /// and all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    //! Scoped threads. std's `thread::scope` provides the same guarantee
    //! (all spawned threads join before the scope returns), so the shim
    //! re-exports it directly.
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn mpmc_fan_out_fan_in() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(out_tx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = (0..100).map(|_| out_rx.recv().unwrap()).collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..100).map(|i| i * 2).collect();
            assert_eq!(got, want);
            assert!(out_rx.recv().is_err());
        });
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
