#![allow(clippy::all)]
//! Offline serde_json shim: parse/print JSON to and from the serde shim's
//! [`Content`] tree, which this crate re-exports as [`Value`].

use serde::{Content, Deserialize, Serialize};

pub use serde::Content as Value;
pub use serde::Error;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Serializes to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s.as_bytes())?;
    T::deserialize(&content)
}

/// Parses JSON bytes (must be UTF-8) into any deserializable value.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let content = parse(bytes)?;
    T::deserialize(&content)
}

/// Builds a [`Value`] from a JSON-shaped literal. Object/array values may be
/// arbitrary serializable Rust expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                serde::write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(bytes: &[u8]) -> Result<Content, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "5", "-3", "5.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn roundtrip_structures() {
        let text = r#"{"a":[1,2.5,"x\ny"],"b":{"c":null,"d":true}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn float_keeps_decimal_point() {
        let v: Value = from_str("5.0").unwrap();
        assert!(matches!(v, Value::F64(_)));
        assert_eq!(v.to_string(), "5.0");
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"error": "x", "codes": [1, 2], "n": 3u64});
        assert_eq!(v["error"], "x");
        assert_eq!(v["codes"][1].as_i64(), Some(2));
        assert_eq!(v["n"].as_u64(), Some(3));
    }

    #[test]
    fn index_missing_is_null() {
        let v = json!({"a": 1});
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }
}
