#![allow(clippy::all)]
//! Offline serde shim.
//!
//! The real serde crate is unavailable in this build environment, so this
//! crate provides the minimal subset the workspace uses: a JSON-shaped
//! [`Content`] tree, simplified [`Serialize`] / [`Deserialize`] traits that
//! convert values to and from that tree, and re-exported derive macros.
//!
//! Differences from real serde, by design:
//! - `Serialize::serialize` takes no `Serializer`; it returns a [`Content`].
//! - `Deserialize::deserialize` reads from `&Content` (no visitors).
//! - `#[serde(with = "module")]` modules implement
//!   `fn serialize(&T) -> Content` and `fn deserialize(&Content) -> Result<T, Error>`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between `Serialize`
/// and the serde_json shim.
///
/// Maps preserve insertion order (struct field order) for deterministic
/// output; `BTreeMap` sources iterate sorted, so snapshots stay canonical.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Content {
    #[default]
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Looks up a key in a `Content::Map` body (linear scan; maps are small).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

static NULL_CONTENT: Content = Content::Null;

/// `serde_json::Value`-style accessors. The serde_json shim re-exports
/// `Content` as its `Value`, so these inherent methods live here.
impl Content {
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(i) => Some(*i),
            Content::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(u) => Some(*u),
            Content::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(f) => Some(*f),
            Content::I64(i) => Some(*i as f64),
            Content::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => content_get(entries, key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL_CONTENT)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, index: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(index).unwrap_or(&NULL_CONTENT),
            _ => &NULL_CONTENT,
        }
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Content::Str(s) if s == *other)
    }
}

impl PartialEq<Content> for &str {
    fn eq(&self, other: &Content) -> bool {
        other == self
    }
}

/// Writes a string as a JSON string literal with escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is shortest-roundtrip and always keeps a decimal point
        // (5.0 prints as "5.0"), matching serde_json's behavior closely
        // enough for snapshots to roundtrip through our parser.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(out, *f),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Content {
    /// Renders compact JSON, like `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn deserialize(content: &Content) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the map.
    /// `Option<T>` overrides this to yield `None`.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, Error> {
                let v: i64 = match c {
                    Content::I64(i) => *i,
                    Content::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, Error> {
                let v: u64 = match c {
                    Content::U64(u) => *u,
                    Content::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::custom(concat!("expected unsigned integer for ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        f64::deserialize(c).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected sequence for set")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort keys so output is deterministic regardless of hash order.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr, $(($t:ident, $idx:tt)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple sequence")),
                }
            }
        }
    };
}

impl_tuple!(2, (A, 0), (B, 1));
impl_tuple!(3, (A, 0), (B, 1), (C, 2));
impl_tuple!(4, (A, 0), (B, 1), (C, 2), (D, 3));
