#![allow(clippy::all)]
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim.
//!
//! Parses the item token stream directly (no syn/quote) and emits impls of
//! the shim's simplified traits:
//!
//! ```ignore
//! trait Serialize   { fn serialize(&self) -> serde::Content; }
//! trait Deserialize { fn deserialize(c: &serde::Content) -> Result<Self, serde::Error>; }
//! ```
//!
//! Supported shapes: named structs, tuple/newtype structs, unit structs,
//! enums with unit / tuple / struct variants, `#[serde(untagged)]` enums,
//! and lifetime-generic items (Serialize only). Supported field attributes:
//! `#[serde(skip)]` and `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated code failed to parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Raw generics text, e.g. `<'a>`; empty when the item is not generic.
    generics: String,
    untagged: bool,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

/// Consumes one `#[...]` attribute starting at `toks[*i]` (which must be `#`).
/// Returns the inner argument tokens when it is a `#[serde(...)]` attribute.
fn take_attr(toks: &[TokenTree], i: &mut usize) -> Option<Vec<TokenTree>> {
    *i += 1; // '#'
    let group = match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.clone(),
        other => panic!("expected [...] after # in attribute, found {other:?}"),
    };
    *i += 1;
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match inner.get(1) {
            Some(TokenTree::Group(args)) => Some(args.stream().into_iter().collect()),
            _ => None,
        },
        _ => None,
    }
}

fn apply_field_attr(args: &[TokenTree], attrs: &mut FieldAttrs) {
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => attrs.skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => attrs.default = true,
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "module"
                if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                    attrs.with = Some(lit.to_string().trim_matches('"').to_string());
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        while is_punct(&toks[i], '#') {
            if let Some(args) = take_attr(&toks, &mut i) {
                apply_field_attr(&args, &mut attrs);
            }
        }
        if is_ident(&toks[i], "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate) etc.
            }
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "expected ':' after field name `{name}`"
        );
        i += 1;
        // Skip the type: commas inside `<...>` are plain Punct tokens, so
        // track angle-bracket depth to find the top-level field separator.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        if i < toks.len() {
            i += 1; // ','
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut segment_has_tokens = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    segment_has_tokens = true;
                }
                '>' => {
                    depth -= 1;
                    segment_has_tokens = true;
                }
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                }
                _ => segment_has_tokens = true,
            },
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(&toks[i], '#') {
            take_attr(&toks, &mut i); // variant-level serde attrs unused
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut untagged = false;
    loop {
        if is_punct(&toks[i], '#') {
            if let Some(args) = take_attr(&toks, &mut i) {
                if args.iter().any(|t| is_ident(t, "untagged")) {
                    untagged = true;
                }
            }
            continue;
        }
        if is_ident(&toks[i], "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        break;
    }
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "derive supports only structs and enums, found {:?}",
            toks[i]
        );
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    let mut generics = String::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 0i32;
        loop {
            match &toks[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    }
                    generics.push(c);
                }
                other => generics.push_str(&other.to_string()),
            }
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }
    let body = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        }
    };
    Item {
        name,
        generics,
        untagged,
        body,
    }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access: &str) -> String {
    let mut s = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let expr = match &f.attrs.with {
            Some(w) => format!("{w}::serialize(&{access}{n})", n = f.name),
            None => format!("::serde::Serialize::serialize(&{access}{n})", n = f.name),
        };
        s.push_str(&format!(
            "__m.push((::std::string::String::from(\"{n}\"), {expr}));\n",
            n = f.name
        ));
    }
    s.push_str("::serde::Content::Map(__m)");
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let g = &item.generics;
    let body = match &item.body {
        Body::Named(fields) => ser_named_fields(fields, "self."),
        Body::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Content::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let value = if item.untagged {
                            "::serde::Content::Null".to_string()
                        } else {
                            format!("::serde::Content::Str(::std::string::String::from(\"{vn}\"))")
                        };
                        arms.push_str(&format!("Self::{vn} => {value},\n"));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
                        };
                        let value = if item.untagged {
                            payload
                        } else {
                            format!(
                                "::serde::Content::Map(vec![(::std::string::String::from(\"{vn}\"), {payload})])"
                            )
                        };
                        arms.push_str(&format!("Self::{vn}({}) => {value},\n", binds.join(", ")));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut payload = String::from(
                            "{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            payload.push_str(&format!(
                                "__m.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize({n})));\n",
                                n = f.name
                            ));
                        }
                        payload.push_str("::serde::Content::Map(__m) }");
                        let value = if item.untagged {
                            payload
                        } else {
                            format!(
                                "::serde::Content::Map(vec![(::std::string::String::from(\"{vn}\"), {payload})])"
                            )
                        };
                        arms.push_str(&format!(
                            "Self::{vn} {{ {} }} => {value},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{g} ::serde::Serialize for {name}{g} {{\n\
         fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn de_named_fields(fields: &[Field], map_var: &str, type_name: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            s.push_str(&format!("{n}: ::core::default::Default::default(),\n"));
            continue;
        }
        let init = match &f.attrs.with {
            Some(w) => format!(
                "match ::serde::content_get({map_var}, \"{n}\") {{\n\
                 Some(__v) => {w}::deserialize(__v)?,\n\
                 None => return ::core::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{n}` in {type_name}\")),\n}}"
            ),
            None if f.attrs.default => format!(
                "match ::serde::content_get({map_var}, \"{n}\") {{\n\
                 Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
                 None => ::core::default::Default::default(),\n}}"
            ),
            None => format!(
                "match ::serde::content_get({map_var}, \"{n}\") {{\n\
                 Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
                 None => ::serde::Deserialize::missing_field(\"{n}\")?,\n}}"
            ),
        };
        s.push_str(&format!("{n}: {init},\n"));
    }
    s
}

fn de_tuple_payload(path: &str, n: usize, src: &str, type_name: &str) -> String {
    if n == 1 {
        return format!(
            "::core::result::Result::Ok({path}(::serde::Deserialize::deserialize({src})?))"
        );
    }
    let elems: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::deserialize(&__s[{k}])?"))
        .collect();
    format!(
        "match {src} {{\n\
         ::serde::Content::Seq(__s) if __s.len() == {n} => \
         ::core::result::Result::Ok({path}({elems})),\n\
         _ => ::core::result::Result::Err(::serde::Error::custom(\
         \"expected {n}-element sequence for {type_name}\")),\n}}",
        elems = elems.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    assert!(
        item.generics.is_empty(),
        "derive(Deserialize) shim does not support generic item {name}"
    );
    let body = match &item.body {
        Body::Named(fields) => format!(
            "match __c {{\n\
             ::serde::Content::Map(__m) => ::core::result::Result::Ok({name} {{\n{fields}\n}}),\n\
             _ => ::core::result::Result::Err(::serde::Error::custom(\"expected map for {name}\")),\n}}",
            fields = de_named_fields(fields, "__m", name)
        ),
        Body::Tuple(n) => de_tuple_payload(name, *n, "__c", name),
        Body::Unit => format!(
            "match __c {{\n\
             ::serde::Content::Null => ::core::result::Result::Ok({name}),\n\
             _ => ::core::result::Result::Err(::serde::Error::custom(\"expected null for {name}\")),\n}}"
        ),
        Body::Enum(variants) if item.untagged => {
            let mut s = String::new();
            for v in variants {
                let attempt = match &v.kind {
                    VariantKind::Unit => format!(
                        "match __c {{ ::serde::Content::Null => \
                         ::core::result::Result::Ok(Self::{vn}), _ => \
                         ::core::result::Result::Err(::serde::Error::custom(\"not null\")) }}",
                        vn = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        de_tuple_payload(&format!("Self::{}", v.name), *n, "__c", name)
                    }
                    VariantKind::Named(fields) => format!(
                        "match __c {{\n\
                         ::serde::Content::Map(__m) => ::core::result::Result::Ok(Self::{vn} {{\n{fields}\n}}),\n\
                         _ => ::core::result::Result::Err(::serde::Error::custom(\"expected map\")),\n}}",
                        vn = v.name,
                        fields = de_named_fields(fields, "__m", name)
                    ),
                };
                s.push_str(&format!(
                    "{{\nlet __r: ::core::result::Result<Self, ::serde::Error> = \
                     (|| {{ {attempt} }})();\n\
                     if let ::core::result::Result::Ok(__v) = __r {{ \
                     return ::core::result::Result::Ok(__v); }}\n}}\n"
                ));
            }
            s.push_str(&format!(
                "::core::result::Result::Err(::serde::Error::custom(\
                 \"data did not match any variant of {name}\"))"
            ));
            s
        }
        Body::Enum(variants) => {
            let has_unit = variants.iter().any(|v| matches!(v.kind, VariantKind::Unit));
            let has_payload = variants.iter().any(|v| !matches!(v.kind, VariantKind::Unit));
            let mut arms = String::new();
            if has_unit {
                let mut unit_arms = String::new();
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok(Self::{vn}),\n",
                            vn = v.name
                        ));
                    }
                }
                arms.push_str(&format!(
                    "::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
                ));
            }
            if has_payload {
                let mut tag_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    let arm_body = match &v.kind {
                        VariantKind::Unit => continue,
                        VariantKind::Tuple(n) => {
                            de_tuple_payload(&format!("Self::{vn}"), *n, "__v", name)
                        }
                        VariantKind::Named(fields) => format!(
                            "match __v {{\n\
                             ::serde::Content::Map(__fm) => ::core::result::Result::Ok(Self::{vn} {{\n{fields}\n}}),\n\
                             _ => ::core::result::Result::Err(::serde::Error::custom(\
                             \"expected map payload for variant {vn} of {name}\")),\n}}",
                            fields = de_named_fields(fields, "__fm", name)
                        ),
                    };
                    tag_arms.push_str(&format!("\"{vn}\" => {arm_body},\n"));
                }
                arms.push_str(&format!(
                    "::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                     let __v = &__m[0].1;\n\
                     match __m[0].0.as_str() {{\n{tag_arms}\
                     __other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n"
                ));
            }
            format!(
                "match __c {{\n{arms}\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"invalid representation for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__c: &::serde::Content) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
