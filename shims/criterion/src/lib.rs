#![allow(clippy::all)]
//! Offline criterion shim: a minimal wall-clock benchmark harness exposing
//! the `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_function` surface. Each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints the median per-iteration time.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work; identical to
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let median = run_bench(self.sample_size, &mut f);
        report(name, median, None);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let median = run_bench(self.criterion.sample_size, &mut f);
        report(&format!("{}/{}", self.group, name), median, self.throughput);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(samples: usize, f: &mut impl FnMut(&mut Bencher)) -> Duration {
    // Calibrate: grow iteration count until one sample takes >= ~1ms, so
    // very fast benchmarks still measure above timer resolution.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / (iters as u32)
        })
        .collect();
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<50} median {median:>12.3?}{rate}");
}

/// Declares a benchmark entry point: a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
