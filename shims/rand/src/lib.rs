#![allow(clippy::all)]
//! Offline rand shim.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! sampling surface (`random::<T>()`, `random_range(..)`) used by the
//! dataset generator and tests. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the workspace
//! needs (every caller seeds explicitly).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

/// Types samplable uniformly from the full domain via `random::<T>()`.
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open or inclusive interval.
/// One blanket `SampleRange` impl over this trait (mirroring real rand)
/// keeps integer-literal type inference working at call sites.
pub trait SampleUniform: Sized {
    fn sample_interval(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval(rng: &mut StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range in random_range");
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_interval(rng: &mut StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable via `random_range(..)`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        T::sample_interval(rng, lo, hi, true)
    }
}

/// The sampling methods callers use on a seeded StdRng.
pub trait RngExt {
    fn random<T: Standard>(&mut self) -> T;
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.random_range(0x100..0xffff_u32);
            assert!((0x100..0xffff).contains(&y));
            let z = rng.random_range(2..=3);
            assert!(z == 2 || z == 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
