//! Kill-and-recover acceptance test: boot `chatiyp serve --data-dir`,
//! ingest over HTTP, snapshot the parity-corpus response bytes, then
//! `SIGKILL` the process mid-flight and boot a second one over the same
//! directory. The recovered server must:
//!
//! 1. hold `/healthz` at 503 until WAL replay finishes, and answer the
//!    **first** 200 with the fully recovered graph version;
//! 2. serve the parity corpus byte-identically to the killed process.
//!
//! This is the process-level twin of
//! `crates/core/tests/durability_recovery.rs` — same contract, but with
//! a real bind/boot/kill lifecycle and the WAL written by another
//! process.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The spawned server, killed on drop so a failing assert never leaks a
/// process.
struct Serve {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `chatiyp serve 0 --data-dir <dir> --tiny` and parses the bound
/// address from the listen line (printed before the graph loads).
fn spawn_serve(dir: &Path) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_chatiyp"))
        .arg("serve")
        .arg("0")
        .arg("--data-dir")
        .arg(dir)
        .arg("--tiny")
        .arg("--fsync")
        .arg("always")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chatiyp serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let listen = lines
        .next()
        .expect("server prints a listen line")
        .expect("read listen line");
    let addr: SocketAddr = listen
        .rsplit("http://")
        .next()
        .expect("listen line carries the address")
        .trim()
        .parse()
        .expect("parse bound address");
    // Keep draining stdout so the server never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Serve { child, addr }
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("write request");
    let mut reply = String::new();
    s.read_to_string(&mut reply).expect("read reply");
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Polls `/healthz` until it answers 200, returning the **first** ready
/// body — the recovery assertions key on what that very first 200 says.
fn await_ready(addr: SocketAddr) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // Connection errors are expected while the socket is still
        // binding in the child; only a served 200 ends the wait.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let raw = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                       Content-Length: 0\r\n\r\n";
            if s.write_all(raw.as_bytes()).is_ok() {
                let mut reply = String::new();
                if s.read_to_string(&mut reply).is_ok() && reply.starts_with("HTTP/1.1 200") {
                    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
                    return serde_json::from_str(body).expect("healthz body is JSON");
                }
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The parity corpus as served over `POST /cypher` — raw body bytes.
fn corpus_over_http(addr: SocketAddr) -> Vec<String> {
    chatiyp_suite::cypher::corpus::PARITY_QUERIES
        .iter()
        .map(|q| {
            let body = serde_json::json!({ "query": q }).to_string();
            let (status, payload) = request(addr, "POST", "/cypher", &body);
            format!("{status}:{payload}")
        })
        .collect()
}

#[test]
fn killed_server_recovers_byte_identically_from_its_wal() {
    let dir = std::env::temp_dir().join("chatiyp_kill_recover");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    const INGESTS: u64 = 5;

    // Boot over the empty directory and grow the graph over HTTP. The
    // batches are built against a local twin of the server's graph
    // (same tiny dataset, same seeds — growth_batch is deterministic),
    // applied locally in lockstep so each next batch references real
    // node ids.
    let first = spawn_serve(&dir);
    let ready = await_ready(first.addr);
    assert_eq!(ready["graph_version"].as_u64(), Some(1));

    let mut twin = chatiyp_suite::data::generate(&chatiyp_suite::data::IypConfig::tiny()).graph;
    for seed in 0..INGESTS {
        let batch = chatiyp_suite::data::growth_batch(&twin, seed, 4);
        let body = serde_json::to_string(&batch).unwrap();
        let (status, payload) = request(first.addr, "POST", "/admin/ingest", &body);
        assert_eq!(status, 200, "ingest {seed}: {payload}");
        batch.apply(&mut twin).expect("twin applies the same batch");
    }
    let want = corpus_over_http(first.addr);
    assert_eq!(
        want.len(),
        chatiyp_suite::cypher::corpus::PARITY_QUERIES.len(),
        "every parity query got a recorded response"
    );

    // SIGKILL: no shutdown hook runs, nothing flushes — the WAL written
    // by the (fsync=always) ingests is all the next process gets.
    drop(first);

    let second = spawn_serve(&dir);
    let ready = await_ready(second.addr);
    assert_eq!(
        ready["graph_version"].as_u64(),
        Some(1 + INGESTS),
        "the first ready signal must already carry the replayed graph: {ready}"
    );
    assert_eq!(
        corpus_over_http(second.addr),
        want,
        "recovered corpus bytes differ from the killed process"
    );
}
