//! Cross-crate integration tests: the full stack from dataset generation
//! through the pipeline, benchmark, metrics and HTTP API.

use chatiyp_suite::core::{ChatIyp, ChatIypConfig, Route};
use chatiyp_suite::cypher::query;
use chatiyp_suite::data::{generate, IypConfig};
use chatiyp_suite::eval::{build_dataset, EvalConfig, Validator};
use chatiyp_suite::llm::LmConfig;
use chatiyp_suite::metrics::{GEval, MetricKind};

fn oracle_config() -> ChatIypConfig {
    ChatIypConfig {
        lm: LmConfig {
            seed: 42,
            skill: 1.0,
            variety: 0.0,
        },
        ..Default::default()
    }
}

#[test]
fn paper_example_end_to_end() {
    let dataset = generate(&IypConfig::tiny());
    // Gold truth straight from the graph.
    let gold = query(
        &dataset.graph,
        "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
         RETURN p.percent",
    )
    .unwrap();
    let expect = gold.single_value().unwrap().as_f64().unwrap();

    let chat = ChatIyp::new(dataset, oracle_config());
    let r = chat.ask("What is the percentage of Japan's population in AS2497?");
    assert_eq!(r.route, Route::Cypher);
    let got = r
        .query_result
        .as_ref()
        .and_then(|q| q.single_value())
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!((got - expect).abs() < 1e-9);
    assert!(r.cypher.unwrap().contains("POPULATION"));
}

#[test]
fn oracle_pipeline_answers_most_benchmark_questions_correctly() {
    let dataset = generate(&IypConfig::tiny());
    let bench = build_dataset(
        &dataset,
        &EvalConfig {
            seed: 42,
            target_size: 81,
        },
    );
    let validator = Validator::new(7);
    let validations: Vec<_> = bench
        .items
        .iter()
        .map(|i| validator.validate(&dataset.graph, i).unwrap())
        .collect();
    let chat = ChatIyp::new(dataset, oracle_config());
    let mut correct = 0;
    for (item, v) in bench.items.iter().zip(&validations) {
        let r = chat.ask(&item.question);
        if let Some(got) = &r.query_result {
            if chatiyp_suite::eval::results_match(&v.gold_result, got) {
                correct += 1;
            }
        }
    }
    // In oracle mode (no injected errors) accuracy should be near-perfect:
    // every phrasing round-trips through the intent parser by construction.
    assert!(
        correct * 100 >= bench.items.len() * 95,
        "oracle accuracy {correct}/{}",
        bench.items.len()
    );
}

#[test]
fn default_skill_shows_the_difficulty_gradient() {
    let dataset = generate(&IypConfig::tiny());
    let bench = build_dataset(
        &dataset,
        &EvalConfig {
            seed: 42,
            target_size: 162,
        },
    );
    let validator = Validator::new(7);
    let validations: Vec<_> = bench
        .items
        .iter()
        .map(|i| validator.validate(&dataset.graph, i).unwrap())
        .collect();
    let chat = ChatIyp::new(dataset, ChatIypConfig::default());
    let mut per_difficulty: std::collections::BTreeMap<String, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (item, v) in bench.items.iter().zip(&validations) {
        let r = chat.ask(&item.question);
        let ok = r
            .query_result
            .as_ref()
            .map(|got| chatiyp_suite::eval::results_match(&v.gold_result, got))
            .unwrap_or(false);
        let e = per_difficulty
            .entry(item.difficulty.to_string())
            .or_insert((0, 0));
        e.0 += ok as usize;
        e.1 += 1;
    }
    let acc = |d: &str| {
        let (c, n) = per_difficulty[d];
        c as f64 / n as f64
    };
    assert!(
        acc("Easy") > acc("Hard"),
        "no gradient: easy {} hard {}",
        acc("Easy"),
        acc("Hard")
    );
}

#[test]
fn geval_judges_pipeline_answers_consistently_with_correctness() {
    let dataset = generate(&IypConfig::tiny());
    let bench = build_dataset(
        &dataset,
        &EvalConfig {
            seed: 42,
            target_size: 54,
        },
    );
    let validator = Validator::new(7);
    let judge = GEval::new(7);
    let validations: Vec<_> = bench
        .items
        .iter()
        .map(|i| validator.validate(&dataset.graph, i).unwrap())
        .collect();
    let chat = ChatIyp::new(dataset, oracle_config());
    let mut correct_scores = Vec::new();
    for (item, v) in bench.items.iter().zip(&validations) {
        let r = chat.ask(&item.question);
        let ok = r
            .query_result
            .as_ref()
            .map(|got| chatiyp_suite::eval::results_match(&v.gold_result, got))
            .unwrap_or(false);
        if ok {
            correct_scores.push(judge.score(&item.question, &r.answer, &v.reference_answer));
        }
    }
    assert!(!correct_scores.is_empty());
    let mean = correct_scores.iter().sum::<f64>() / correct_scores.len() as f64;
    assert!(
        mean > 0.7,
        "correct answers judged low on average: {mean:.3}"
    );
}

#[test]
fn all_four_metrics_agree_on_identity_and_garbage() {
    let geval = GEval::new(1);
    let q = "How many ASes are registered in Japan?";
    let reference = "The correct number of ASes registered in JP equals 31.";
    for kind in MetricKind::ALL {
        let same = chatiyp_suite::metrics::geval::score(kind, &geval, q, reference, reference);
        let garbage = chatiyp_suite::metrics::geval::score(
            kind,
            &geval,
            q,
            "purple elephants dance quietly",
            reference,
        );
        assert!(same > garbage, "{}: {same} !> {garbage}", kind.name());
    }
}

#[test]
fn http_server_serves_the_pipeline() {
    use chatiyp_suite::server::{Server, ServerConfig};
    use std::io::{Read, Write};

    let dataset = generate(&IypConfig::tiny());
    let chat = ChatIyp::new(dataset, oracle_config());
    let server = Server::start(
        chat,
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            workers: 2,
            read_timeout: std::time::Duration::from_secs(2),
            ..Default::default()
        },
    )
    .unwrap();

    let body = r#"{"question":"In which country is AS15169 registered?"}"#;
    let raw = format!(
        "POST /ask HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 200"), "reply: {reply}");
    assert!(reply.contains("US"), "reply: {reply}");
    server.shutdown();
}

#[test]
fn live_ingest_over_http_is_visible_to_subsequent_reads() {
    use chatiyp_suite::data::growth_batch;
    use chatiyp_suite::server::{Server, ServerConfig};
    use std::io::{Read, Write};

    fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        reply
    }

    let dataset = generate(&IypConfig::tiny());
    let count_q = "MATCH (a:AS) RETURN count(a)";
    let before = query(&dataset.graph, count_q)
        .unwrap()
        .single_value()
        .unwrap()
        .as_int()
        .unwrap();
    // Build the delta against the same pre-ingest graph the server starts
    // from, exactly as an external feed would.
    let batch = growth_batch(&dataset.graph, 7, 5);
    let body = serde_json::to_string(&batch).unwrap();

    let chat = ChatIyp::new(dataset, oracle_config());
    let server = Server::start(
        chat,
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            workers: 2,
            read_timeout: std::time::Duration::from_secs(2),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let cypher_body = format!(r#"{{"query":"{count_q}"}}"#);
    let r0 = http(addr, "POST", "/cypher", &cypher_body);
    assert!(r0.starts_with("HTTP/1.1 200"), "pre-ingest read: {r0}");
    assert!(r0.contains(&before.to_string()), "pre-ingest count: {r0}");

    let ri = http(addr, "POST", "/admin/ingest", &body);
    assert!(ri.starts_with("HTTP/1.1 200"), "ingest: {ri}");
    assert!(ri.contains("\"old_version\":1"), "ingest: {ri}");
    assert!(ri.contains("\"new_version\":2"), "ingest: {ri}");

    // Reads issued after the swap see the grown graph and report the new
    // version in /stats.
    let r1 = http(addr, "POST", "/cypher", &cypher_body);
    assert!(
        r1.contains(&(before + 5).to_string()),
        "post-ingest count (want {}): {r1}",
        before + 5
    );
    let stats = http(addr, "GET", "/stats", "");
    assert!(stats.contains("\"graph_version\":2"), "stats: {stats}");
    let healthz = http(addr, "GET", "/healthz", "");
    assert!(healthz.starts_with("HTTP/1.1 200"), "healthz: {healthz}");
    assert!(
        healthz.contains("\"graph_version\":2"),
        "healthz: {healthz}"
    );
    server.shutdown();
}

#[test]
fn snapshot_roundtrip_preserves_query_results() {
    use chatiyp_suite::graphdb::snapshot;
    let dataset = generate(&IypConfig::tiny());
    let q = "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
             RETURN c.country_code, count(a) ORDER BY count(a) DESC, c.country_code LIMIT 5";
    let before = query(&dataset.graph, q).unwrap();
    let json = snapshot::to_json(&dataset.graph).unwrap();
    let restored = snapshot::from_json(&json).unwrap();
    let after = query(&restored, q).unwrap();
    assert_eq!(before, after);
}

#[test]
fn dataset_scales_with_config() {
    let small = generate(&IypConfig::tiny());
    let big = generate(&IypConfig {
        n_as: 300,
        ..IypConfig::tiny()
    });
    assert!(big.graph.node_count() > small.graph.node_count() * 2);
    // Pinned entities survive scaling.
    assert!(big.as_by_asn.contains_key(&2497));
    assert!(small.as_by_asn.contains_key(&2497));
}

#[test]
fn concurrent_readers_share_the_graph() {
    use chatiyp_suite::graphdb::shared;
    use std::sync::Arc;

    let dataset = generate(&IypConfig::tiny());
    let graph = shared(dataset.graph);
    let queries = [
        "MATCH (a:AS) RETURN count(a)",
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) ORDER BY count(a) DESC LIMIT 3",
        "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix) RETURN count(p)",
        "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) RETURN min(r.rank)",
    ];
    // Baseline answers single-threaded.
    let baseline: Vec<String> = {
        let g = graph.read();
        queries
            .iter()
            .map(|q| query(&g, q).unwrap().fingerprint(true))
            .collect()
    };
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let graph = Arc::clone(&graph);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for i in 0..25 {
                    let qi = (t + i) % queries.len();
                    let g = graph.read();
                    let r = query(&g, queries[qi]).unwrap();
                    assert_eq!(r.fingerprint(true), baseline[qi], "thread {t} iter {i}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no reader panicked");
    }
}

#[test]
fn pipeline_is_safely_shareable_across_threads() {
    use std::sync::Arc;
    let chat = Arc::new(ChatIyp::new(generate(&IypConfig::tiny()), oracle_config()));
    let expected = chat.ask("What is the name of AS2497?").answer;
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let chat = Arc::clone(&chat);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    assert_eq!(chat.ask("What is the name of AS2497?").answer, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no asker panicked");
    }
}
