//! `chatiyp` — the command-line entry point of the reproduction.
//!
//! ```text
//! chatiyp ask "<question>"     answer one question (prints answer + Cypher)
//! chatiyp cypher "<query>"     run read-only Cypher directly
//! chatiyp serve [port]         start the HTTP JSON API (default 8047)
//! chatiyp eval [n]             run n benchmark questions (default 312)
//! chatiyp stats                print dataset statistics
//! ```
//!
//! The graph is regenerated deterministically (seed 42) on every run; use
//! `examples/snapshot_cache.rs` for a cached-snapshot workflow.

use chatiyp_core::{ChatIyp, ChatIypConfig};
use iyp_data::{generate, IypConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ask") => {
            let question = args[1..].join(" ");
            if question.trim().is_empty() {
                eprintln!("usage: chatiyp ask \"<question>\"");
                std::process::exit(2);
            }
            let chat = build_pipeline();
            println!("{}", chat.ask(&question));
        }
        Some("cypher") => {
            let q = args[1..].join(" ");
            if q.trim().is_empty() {
                eprintln!("usage: chatiyp cypher \"<query>\"");
                std::process::exit(2);
            }
            let dataset = generate_dataset();
            match iyp_cypher::query(&dataset.graph, &q) {
                Ok(result) => print!("{result}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("serve") => {
            let port: u16 = args.get(1).and_then(|p| p.parse().ok()).unwrap_or(8047);
            let config = chatiyp_server::ServerConfig {
                addr: format!("127.0.0.1:{port}").parse().expect("valid address"),
                ..Default::default()
            };
            // Bind first, build the graph in the background: the socket
            // answers 503 + Retry-After until the pipeline is published.
            let server =
                chatiyp_server::Server::start_deferred(config, build_pipeline).expect("bind");
            println!("ChatIYP API listening on http://{}", server.addr());
            println!("graph loading in the background; poll GET /healthz for readiness");
            println!(
                "endpoints: POST /ask, POST /cypher, POST /admin/ingest, \
                 GET /health, GET /healthz, GET /schema, GET /stats, GET /metrics"
            );
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("eval") => {
            let n: usize = args.get(1).and_then(|p| p.parse().ok()).unwrap_or(312);
            let mut config = chatiyp_bench::ExperimentConfig::default();
            config.eval.target_size = n;
            eprintln!("evaluating {n} questions ...");
            let run = chatiyp_bench::run_evaluation(&config);
            println!(
                "accuracy {:.1}% over {} questions",
                100.0 * run.accuracy(),
                run.records.len()
            );
            for kind in iyp_metrics::MetricKind::ALL {
                let s = iyp_metrics::summarize(&run.scores(kind));
                println!(
                    "{:<10} mean {:.3}  median {:.3}",
                    kind.name(),
                    s.mean,
                    s.median
                );
            }
        }
        Some("stats") => {
            let dataset = generate_dataset();
            let stats = iyp_graphdb::GraphStats::compute(&dataset.graph);
            println!(
                "{} nodes / {} relationships; mean degree {:.1}, max {}",
                stats.nodes, stats.rels, stats.degree.mean, stats.degree.max
            );
            for (label, n) in &stats.nodes_by_label {
                println!("  :{label:<14} {n}");
            }
            for (ty, n) in &stats.rels_by_type {
                println!("  [:{ty:<14}] {n}");
            }
        }
        _ => {
            eprintln!(
                "chatiyp — natural-language access to the (synthetic) Internet Yellow Pages\n\
                 \n\
                 usage:\n\
                 \x20 chatiyp ask \"<question>\"     answer one question\n\
                 \x20 chatiyp cypher \"<query>\"     run read-only Cypher\n\
                 \x20 chatiyp serve [port]         start the HTTP JSON API\n\
                 \x20 chatiyp eval [n]             run the benchmark\n\
                 \x20 chatiyp stats                dataset statistics"
            );
            std::process::exit(2);
        }
    }
}

fn generate_dataset() -> iyp_data::IypDataset {
    eprintln!("generating the synthetic IYP graph (seed 42) ...");
    generate(&IypConfig::default())
}

fn build_pipeline() -> ChatIyp {
    ChatIyp::new(generate_dataset(), ChatIypConfig::default())
}
