//! `chatiyp` — the command-line entry point of the reproduction.
//!
//! ```text
//! chatiyp ask "<question>"     answer one question (prints answer + Cypher)
//! chatiyp cypher "<query>"     run read-only Cypher directly
//! chatiyp serve [port] [--data-dir DIR] [--fsync POLICY] [--tiny]
//!                              start the HTTP JSON API (default port 8047);
//!                              with --data-dir, recover from DIR's
//!                              checkpoint + WAL and persist every ingest
//! chatiyp eval [n]             run n benchmark questions (default 312)
//! chatiyp stats                print dataset statistics
//! ```
//!
//! The graph is regenerated deterministically (seed 42) on every run; use
//! `examples/snapshot_cache.rs` for a cached-snapshot workflow, or
//! `serve --data-dir` for the durable one (see docs/DURABILITY.md).

use chatiyp_core::{ChatIyp, ChatIypConfig, DurabilityConfig};
use iyp_data::{generate, IypConfig};
use iyp_graphdb::FsyncPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ask") => {
            let question = args[1..].join(" ");
            if question.trim().is_empty() {
                eprintln!("usage: chatiyp ask \"<question>\"");
                std::process::exit(2);
            }
            let chat = build_pipeline();
            println!("{}", chat.ask(&question));
        }
        Some("cypher") => {
            let q = args[1..].join(" ");
            if q.trim().is_empty() {
                eprintln!("usage: chatiyp cypher \"<query>\"");
                std::process::exit(2);
            }
            let dataset = generate_dataset();
            match iyp_cypher::query(&dataset.graph, &q) {
                Ok(result) => print!("{result}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("serve") => {
            let opts = match ServeOptions::parse(&args[1..]) {
                Ok(opts) => opts,
                Err(e) => {
                    eprintln!("error: {e}");
                    eprintln!(
                        "usage: chatiyp serve [port] [--data-dir DIR] \
                         [--fsync always|every_n[:N]|off] [--tiny]"
                    );
                    std::process::exit(2);
                }
            };
            let config = chatiyp_server::ServerConfig {
                addr: format!("127.0.0.1:{}", opts.port)
                    .parse()
                    .expect("valid address"),
                ..Default::default()
            };
            // Bind first, build the graph in the background: the socket
            // answers 503 + Retry-After until the pipeline is published
            // (after WAL replay, when serving durably — /healthz flips
            // to 200 only once the recovered graph is live).
            let server =
                chatiyp_server::Server::start_deferred(config, move || opts.build_pipeline())
                    .expect("bind");
            println!("ChatIYP API listening on http://{}", server.addr());
            println!("graph loading in the background; poll GET /healthz for readiness");
            println!(
                "endpoints: POST /ask, POST /cypher, POST /admin/ingest, \
                 POST /admin/checkpoint, GET /health, GET /healthz, GET /schema, \
                 GET /stats, GET /metrics"
            );
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("eval") => {
            let n: usize = args.get(1).and_then(|p| p.parse().ok()).unwrap_or(312);
            let mut config = chatiyp_bench::ExperimentConfig::default();
            config.eval.target_size = n;
            eprintln!("evaluating {n} questions ...");
            let run = chatiyp_bench::run_evaluation(&config);
            println!(
                "accuracy {:.1}% over {} questions",
                100.0 * run.accuracy(),
                run.records.len()
            );
            for kind in iyp_metrics::MetricKind::ALL {
                let s = iyp_metrics::summarize(&run.scores(kind));
                println!(
                    "{:<10} mean {:.3}  median {:.3}",
                    kind.name(),
                    s.mean,
                    s.median
                );
            }
        }
        Some("stats") => {
            let dataset = generate_dataset();
            let stats = iyp_graphdb::GraphStats::compute(&dataset.graph);
            println!(
                "{} nodes / {} relationships; mean degree {:.1}, max {}",
                stats.nodes, stats.rels, stats.degree.mean, stats.degree.max
            );
            for (label, n) in &stats.nodes_by_label {
                println!("  :{label:<14} {n}");
            }
            for (ty, n) in &stats.rels_by_type {
                println!("  [:{ty:<14}] {n}");
            }
        }
        _ => {
            eprintln!(
                "chatiyp — natural-language access to the (synthetic) Internet Yellow Pages\n\
                 \n\
                 usage:\n\
                 \x20 chatiyp ask \"<question>\"     answer one question\n\
                 \x20 chatiyp cypher \"<query>\"     run read-only Cypher\n\
                 \x20 chatiyp serve [port] [--data-dir DIR] [--fsync POLICY] [--tiny]\n\
                 \x20                              start the HTTP JSON API\n\
                 \x20 chatiyp eval [n]             run the benchmark\n\
                 \x20 chatiyp stats                dataset statistics"
            );
            std::process::exit(2);
        }
    }
}

fn generate_dataset() -> iyp_data::IypDataset {
    eprintln!("generating the synthetic IYP graph (seed 42) ...");
    generate(&IypConfig::default())
}

fn build_pipeline() -> ChatIyp {
    ChatIyp::new(generate_dataset(), ChatIypConfig::default())
}

/// Parsed `chatiyp serve` arguments.
struct ServeOptions {
    port: u16,
    data_dir: Option<std::path::PathBuf>,
    fsync: FsyncPolicy,
    tiny: bool,
}

impl ServeOptions {
    /// Parses `[port] [--data-dir DIR] [--fsync POLICY] [--tiny]` in any
    /// order. An unparseable port (or any unknown flag) is a hard error,
    /// never a silent fallback to the default port.
    fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut opts = ServeOptions {
            port: 8047,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            tiny: false,
        };
        let mut saw_port = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--data-dir" => match it.next() {
                    Some(dir) => opts.data_dir = Some(dir.into()),
                    None => return Err("--data-dir needs a directory argument".into()),
                },
                "--fsync" => match it.next() {
                    Some(policy) => opts.fsync = FsyncPolicy::parse(policy)?,
                    None => return Err("--fsync needs a policy argument".into()),
                },
                "--tiny" => opts.tiny = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                port if !saw_port => {
                    opts.port = port
                        .parse()
                        .map_err(|_| format!("invalid port `{port}` (want 1-65535)"))?;
                    saw_port = true;
                }
                extra => return Err(format!("unexpected argument `{extra}`")),
            }
        }
        Ok(opts)
    }

    /// The dataset this server boots from when there is nothing to
    /// recover: `--tiny` trades realism for startup speed (crash tests,
    /// demos).
    fn base_dataset(&self) -> iyp_data::IypDataset {
        if self.tiny {
            eprintln!("generating the tiny synthetic IYP graph (seed 42) ...");
            generate(&IypConfig::tiny())
        } else {
            generate_dataset()
        }
    }

    /// Builds the pipeline: in-memory without `--data-dir`, otherwise
    /// recovered from the directory's checkpoint + WAL. Runs on the
    /// server's loader thread, so a failed recovery aborts the process
    /// with the offending path in the message rather than serving an
    /// empty graph.
    fn build_pipeline(self) -> ChatIyp {
        let Some(dir) = &self.data_dir else {
            return ChatIyp::new(self.base_dataset(), ChatIypConfig::default());
        };
        let dcfg = DurabilityConfig::new(dir).with_fsync(self.fsync);
        match ChatIyp::open_durable(ChatIypConfig::default(), &dcfg, || self.base_dataset()) {
            Ok((chat, report)) => {
                eprintln!(
                    "recovered {} (checkpoint {}, {} wal record{} replayed, fsync={})",
                    dir.display(),
                    report
                        .checkpoint_version
                        .map_or_else(|| "none".to_string(), |v| format!("v{v}")),
                    report.replayed,
                    if report.replayed == 1 { "" } else { "s" },
                    self.fsync.as_str(),
                );
                if report.torn_tail_bytes > 0 {
                    eprintln!(
                        "warning: dropped a torn {}–byte wal tail (interrupted final append)",
                        report.torn_tail_bytes
                    );
                }
                chat
            }
            Err(e) => {
                eprintln!("error: cannot recover {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}
