//! # chatiyp-suite
//!
//! Umbrella crate for the ChatIYP reproduction: re-exports every
//! sub-crate under one roof and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`core`]'s `ChatIyp` for the pipeline, [`data`]'s
//! `generate` for the synthetic IYP graph, and [`eval`]'s
//! `build_dataset` for the benchmark.

#![warn(missing_docs)]

pub use chatiyp_core as core;
pub use chatiyp_server as server;
pub use cypher_eval as eval;
pub use iyp_cypher as cypher;
pub use iyp_data as data;
pub use iyp_embed as embed;
pub use iyp_graphdb as graphdb;
pub use iyp_llm as llm;
pub use iyp_metrics as metrics;
